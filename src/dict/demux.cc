#include "dict/demux.h"

#include <string>

#include "bwt/fm_index.h"
#include "dict/dictionary_searcher.h"

namespace bwtk {

Result<std::vector<DemuxAssignment>> DemuxReads(
    const PatternSetTrie& barcodes,
    const std::vector<std::vector<DnaCode>>& reads,
    const DemuxOptions& options) {
  if (options.max_mismatches < 0) {
    return Status::InvalidArgument("max_mismatches must be >= 0, got " +
                                   std::to_string(options.max_mismatches));
  }
  std::vector<DemuxAssignment> assignments(reads.size());
  if (barcodes.num_patterns() == 0 || barcodes.length() == 0) {
    return assignments;  // every read stays unassigned
  }
  for (size_t i = 0; i < reads.size(); ++i) {
    if (reads[i].size() < barcodes.length()) continue;  // cannot contain one
    // A throw-away index over the read: reads are tens of bases, so this is
    // microseconds — the expensive side (the barcode set) is amortized by
    // the joint trie descent.
    BWTK_ASSIGN_OR_RETURN(FmIndex read_index, FmIndex::Build(reads[i]));
    const DictionarySearcher searcher(&read_index);
    const DictionaryBestHit hit =
        searcher.SearchBest(barcodes, options.max_mismatches);
    DemuxAssignment& a = assignments[i];
    if (hit.pattern < 0) continue;
    a.outcome = hit.ambiguous ? DemuxAssignment::Outcome::kAmbiguous
                              : DemuxAssignment::Outcome::kAssigned;
    a.barcode = hit.pattern;
    a.mismatches = hit.mismatches;
    a.position = hit.position;
  }
  return assignments;
}

}  // namespace bwtk
