
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alphabet/dna.cc" "src/CMakeFiles/bwtk.dir/alphabet/dna.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/alphabet/dna.cc.o.d"
  "/root/repo/src/alphabet/fasta.cc" "src/CMakeFiles/bwtk.dir/alphabet/fasta.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/alphabet/fasta.cc.o.d"
  "/root/repo/src/alphabet/fastq.cc" "src/CMakeFiles/bwtk.dir/alphabet/fastq.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/alphabet/fastq.cc.o.d"
  "/root/repo/src/alphabet/packed_sequence.cc" "src/CMakeFiles/bwtk.dir/alphabet/packed_sequence.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/alphabet/packed_sequence.cc.o.d"
  "/root/repo/src/baselines/aho_corasick.cc" "src/CMakeFiles/bwtk.dir/baselines/aho_corasick.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/baselines/aho_corasick.cc.o.d"
  "/root/repo/src/baselines/amir_search.cc" "src/CMakeFiles/bwtk.dir/baselines/amir_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/baselines/amir_search.cc.o.d"
  "/root/repo/src/baselines/cole_search.cc" "src/CMakeFiles/bwtk.dir/baselines/cole_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/baselines/cole_search.cc.o.d"
  "/root/repo/src/baselines/kangaroo_search.cc" "src/CMakeFiles/bwtk.dir/baselines/kangaroo_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/baselines/kangaroo_search.cc.o.d"
  "/root/repo/src/baselines/naive_search.cc" "src/CMakeFiles/bwtk.dir/baselines/naive_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/baselines/naive_search.cc.o.d"
  "/root/repo/src/bwt/bwt.cc" "src/CMakeFiles/bwtk.dir/bwt/bwt.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/bwt/bwt.cc.o.d"
  "/root/repo/src/bwt/fm_index.cc" "src/CMakeFiles/bwtk.dir/bwt/fm_index.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/bwt/fm_index.cc.o.d"
  "/root/repo/src/bwt/occ_table.cc" "src/CMakeFiles/bwtk.dir/bwt/occ_table.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/bwt/occ_table.cc.o.d"
  "/root/repo/src/bwt/serialize.cc" "src/CMakeFiles/bwtk.dir/bwt/serialize.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/bwt/serialize.cc.o.d"
  "/root/repo/src/mismatch/kangaroo.cc" "src/CMakeFiles/bwtk.dir/mismatch/kangaroo.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/mismatch/kangaroo.cc.o.d"
  "/root/repo/src/mismatch/mismatch_array.cc" "src/CMakeFiles/bwtk.dir/mismatch/mismatch_array.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/mismatch/mismatch_array.cc.o.d"
  "/root/repo/src/mismatch/zbox.cc" "src/CMakeFiles/bwtk.dir/mismatch/zbox.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/mismatch/zbox.cc.o.d"
  "/root/repo/src/search/algorithm_a.cc" "src/CMakeFiles/bwtk.dir/search/algorithm_a.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/algorithm_a.cc.o.d"
  "/root/repo/src/search/kerror_search.cc" "src/CMakeFiles/bwtk.dir/search/kerror_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/kerror_search.cc.o.d"
  "/root/repo/src/search/searcher.cc" "src/CMakeFiles/bwtk.dir/search/searcher.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/searcher.cc.o.d"
  "/root/repo/src/search/stree_search.cc" "src/CMakeFiles/bwtk.dir/search/stree_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/stree_search.cc.o.d"
  "/root/repo/src/search/tau_heuristic.cc" "src/CMakeFiles/bwtk.dir/search/tau_heuristic.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/tau_heuristic.cc.o.d"
  "/root/repo/src/search/wildcard_search.cc" "src/CMakeFiles/bwtk.dir/search/wildcard_search.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/search/wildcard_search.cc.o.d"
  "/root/repo/src/simulate/genome_generator.cc" "src/CMakeFiles/bwtk.dir/simulate/genome_generator.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/simulate/genome_generator.cc.o.d"
  "/root/repo/src/simulate/read_simulator.cc" "src/CMakeFiles/bwtk.dir/simulate/read_simulator.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/simulate/read_simulator.cc.o.d"
  "/root/repo/src/suffix/lcp.cc" "src/CMakeFiles/bwtk.dir/suffix/lcp.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/suffix/lcp.cc.o.d"
  "/root/repo/src/suffix/suffix_array.cc" "src/CMakeFiles/bwtk.dir/suffix/suffix_array.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/suffix/suffix_array.cc.o.d"
  "/root/repo/src/suffix/suffix_tree.cc" "src/CMakeFiles/bwtk.dir/suffix/suffix_tree.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/suffix/suffix_tree.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/bwtk.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/bwtk.dir/util/random.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/bwtk.dir/util/status.cc.o" "gcc" "src/CMakeFiles/bwtk.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
