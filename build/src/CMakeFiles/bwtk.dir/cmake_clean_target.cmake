file(REMOVE_RECURSE
  "libbwtk.a"
)
