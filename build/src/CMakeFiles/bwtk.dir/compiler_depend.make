# Empty compiler generated dependencies file for bwtk.
# This may be replaced when dependencies are built.
