file(REMOVE_RECURSE
  "CMakeFiles/snp_scan.dir/snp_scan.cpp.o"
  "CMakeFiles/snp_scan.dir/snp_scan.cpp.o.d"
  "snp_scan"
  "snp_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snp_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
