# Empty dependencies file for snp_scan.
# This may be replaced when dependencies are built.
