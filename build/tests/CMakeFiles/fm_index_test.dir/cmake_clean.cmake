file(REMOVE_RECURSE
  "CMakeFiles/fm_index_test.dir/fm_index_test.cc.o"
  "CMakeFiles/fm_index_test.dir/fm_index_test.cc.o.d"
  "fm_index_test"
  "fm_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fm_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
