# Empty compiler generated dependencies file for fm_index_test.
# This may be replaced when dependencies are built.
