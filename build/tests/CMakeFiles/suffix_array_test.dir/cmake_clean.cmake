file(REMOVE_RECURSE
  "CMakeFiles/suffix_array_test.dir/suffix_array_test.cc.o"
  "CMakeFiles/suffix_array_test.dir/suffix_array_test.cc.o.d"
  "suffix_array_test"
  "suffix_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
