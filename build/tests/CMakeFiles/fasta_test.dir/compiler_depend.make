# Empty compiler generated dependencies file for fasta_test.
# This may be replaced when dependencies are built.
