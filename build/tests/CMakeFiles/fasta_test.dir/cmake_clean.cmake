file(REMOVE_RECURSE
  "CMakeFiles/fasta_test.dir/fasta_test.cc.o"
  "CMakeFiles/fasta_test.dir/fasta_test.cc.o.d"
  "fasta_test"
  "fasta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fasta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
