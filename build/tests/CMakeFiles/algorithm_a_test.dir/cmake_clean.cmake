file(REMOVE_RECURSE
  "CMakeFiles/algorithm_a_test.dir/algorithm_a_test.cc.o"
  "CMakeFiles/algorithm_a_test.dir/algorithm_a_test.cc.o.d"
  "algorithm_a_test"
  "algorithm_a_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithm_a_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
