# Empty compiler generated dependencies file for algorithm_a_test.
# This may be replaced when dependencies are built.
