file(REMOVE_RECURSE
  "CMakeFiles/mismatch_array_test.dir/mismatch_array_test.cc.o"
  "CMakeFiles/mismatch_array_test.dir/mismatch_array_test.cc.o.d"
  "mismatch_array_test"
  "mismatch_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mismatch_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
