# Empty compiler generated dependencies file for mismatch_array_test.
# This may be replaced when dependencies are built.
