file(REMOVE_RECURSE
  "CMakeFiles/kerror_search_test.dir/kerror_search_test.cc.o"
  "CMakeFiles/kerror_search_test.dir/kerror_search_test.cc.o.d"
  "kerror_search_test"
  "kerror_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kerror_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
