# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kerror_search_test.
