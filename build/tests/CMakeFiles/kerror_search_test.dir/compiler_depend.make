# Empty compiler generated dependencies file for kerror_search_test.
# This may be replaced when dependencies are built.
