file(REMOVE_RECURSE
  "CMakeFiles/stree_search_test.dir/stree_search_test.cc.o"
  "CMakeFiles/stree_search_test.dir/stree_search_test.cc.o.d"
  "stree_search_test"
  "stree_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stree_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
