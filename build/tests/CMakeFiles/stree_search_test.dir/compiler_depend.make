# Empty compiler generated dependencies file for stree_search_test.
# This may be replaced when dependencies are built.
