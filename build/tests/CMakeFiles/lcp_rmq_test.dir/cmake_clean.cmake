file(REMOVE_RECURSE
  "CMakeFiles/lcp_rmq_test.dir/lcp_rmq_test.cc.o"
  "CMakeFiles/lcp_rmq_test.dir/lcp_rmq_test.cc.o.d"
  "lcp_rmq_test"
  "lcp_rmq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcp_rmq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
