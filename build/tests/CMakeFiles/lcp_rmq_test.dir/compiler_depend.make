# Empty compiler generated dependencies file for lcp_rmq_test.
# This may be replaced when dependencies are built.
