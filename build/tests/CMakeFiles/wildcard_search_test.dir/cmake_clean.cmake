file(REMOVE_RECURSE
  "CMakeFiles/wildcard_search_test.dir/wildcard_search_test.cc.o"
  "CMakeFiles/wildcard_search_test.dir/wildcard_search_test.cc.o.d"
  "wildcard_search_test"
  "wildcard_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildcard_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
