file(REMOVE_RECURSE
  "../bench/bench_fig11a_vary_k"
  "../bench/bench_fig11a_vary_k.pdb"
  "CMakeFiles/bench_fig11a_vary_k.dir/bench_fig11a_vary_k.cc.o"
  "CMakeFiles/bench_fig11a_vary_k.dir/bench_fig11a_vary_k.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
