file(REMOVE_RECURSE
  "../bench/bench_ablation_rankall"
  "../bench/bench_ablation_rankall.pdb"
  "CMakeFiles/bench_ablation_rankall.dir/bench_ablation_rankall.cc.o"
  "CMakeFiles/bench_ablation_rankall.dir/bench_ablation_rankall.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rankall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
