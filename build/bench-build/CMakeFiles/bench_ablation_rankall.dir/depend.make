# Empty dependencies file for bench_ablation_rankall.
# This may be replaced when dependencies are built.
