file(REMOVE_RECURSE
  "../bench/bench_micro_fm"
  "../bench/bench_micro_fm.pdb"
  "CMakeFiles/bench_micro_fm.dir/bench_micro_fm.cc.o"
  "CMakeFiles/bench_micro_fm.dir/bench_micro_fm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_fm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
