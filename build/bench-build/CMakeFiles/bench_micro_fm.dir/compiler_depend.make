# Empty compiler generated dependencies file for bench_micro_fm.
# This may be replaced when dependencies are built.
