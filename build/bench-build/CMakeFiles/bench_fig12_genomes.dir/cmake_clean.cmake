file(REMOVE_RECURSE
  "../bench/bench_fig12_genomes"
  "../bench/bench_fig12_genomes.pdb"
  "CMakeFiles/bench_fig12_genomes.dir/bench_fig12_genomes.cc.o"
  "CMakeFiles/bench_fig12_genomes.dir/bench_fig12_genomes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_genomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
