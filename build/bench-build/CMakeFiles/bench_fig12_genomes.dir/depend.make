# Empty dependencies file for bench_fig12_genomes.
# This may be replaced when dependencies are built.
