# Empty compiler generated dependencies file for bench_fig11b_read_length.
# This may be replaced when dependencies are built.
