# Empty compiler generated dependencies file for bench_table2_leaf_nodes.
# This may be replaced when dependencies are built.
