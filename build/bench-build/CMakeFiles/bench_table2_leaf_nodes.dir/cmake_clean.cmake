file(REMOVE_RECURSE
  "../bench/bench_table2_leaf_nodes"
  "../bench/bench_table2_leaf_nodes.pdb"
  "CMakeFiles/bench_table2_leaf_nodes.dir/bench_table2_leaf_nodes.cc.o"
  "CMakeFiles/bench_table2_leaf_nodes.dir/bench_table2_leaf_nodes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_leaf_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
