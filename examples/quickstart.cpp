// Quickstart: index a sequence and find approximate occurrences.
//
//   $ ./quickstart
//
// Reproduces the paper's running example (Section IV): pattern tcaca in
// target acagaca with up to 2 mismatches, then a slightly larger query to
// show occurrence statistics.

#include <cstdio>

#include "bwtk.h"

int main() {
  // 1. Build a searcher over the target sequence. The constructor reverses
  //    the text, builds its suffix array and BWT, and attaches the rankall
  //    and suffix-array samples.
  auto searcher_or = bwtk::KMismatchSearcher::Build("acagaca");
  if (!searcher_or.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 searcher_or.status().ToString().c_str());
    return 1;
  }
  const bwtk::KMismatchSearcher& searcher = *searcher_or;

  // 2. Search with a mismatch budget.
  auto hits_or = searcher.Search("tcaca", /*k=*/2);
  if (!hits_or.ok()) {
    std::fprintf(stderr, "search failed: %s\n",
                 hits_or.status().ToString().c_str());
    return 1;
  }
  std::printf("pattern tcaca in acagaca with k=2:\n");
  for (const bwtk::Occurrence& hit : *hits_or) {
    std::printf("  position %zu, %d mismatches\n", hit.position,
                hit.mismatches);
  }

  // 3. Instrumentation: the mismatching-tree statistics of Algorithm A.
  bwtk::SearchStats stats;
  auto searcher2 =
      bwtk::KMismatchSearcher::Build("acagacattacagacagtacagacaa").value();
  const auto hits2 = searcher2.Search("acagacat", 2, &stats).value();
  std::printf("\npattern acagacat, k=2: %zu occurrences\n", hits2.size());
  std::printf("  M-tree: %llu nodes, %llu leaves (the paper's n')\n",
              static_cast<unsigned long long>(stats.mtree_nodes),
              static_cast<unsigned long long>(stats.mtree_leaves));
  std::printf("  search() calls: %llu, reused pairs: %llu\n",
              static_cast<unsigned long long>(stats.extend_calls),
              static_cast<unsigned long long>(stats.reused_nodes));
  return 0;
}
