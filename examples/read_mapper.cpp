// read_mapper — the paper's motivating application: map short reads onto a
// reference genome allowing up to k mismatches per alignment.
//
// Usage:
//   ./read_mapper [flags]                            # self-contained demo
//   ./read_mapper [flags] genome.fa reads.fq [k] [t] # FASTQ vs FASTA,
//                                                    # t worker threads
// Flags:
//   --shards=N          cut the genome into N shards (parallel per-shard
//                       index build, seam-exact routed search); overlap is
//                       sized automatically to max read length + k so
//                       output stays identical to the monolithic index
//   --trace-out=FILE    write a Chrome trace-event JSON file (open it in
//                       https://ui.perfetto.dev or chrome://tracing) with
//                       sampled per-query traces + the slow-query log
//   --trace-sample=R    per-query sampling probability in [0, 1]
//                       (default 0.01 when --trace-out is given, else 0)
//   --slow=N            slow-query log depth (default 8)
//
// In demo mode a synthetic genome and wgsim-like reads are generated, the
// genome is indexed, and each read (both strands) is aligned; output is a
// minimal tab-separated mapping report plus aggregate statistics.
//
// Mapping is batched: both strands of every read become one BatchQuery and
// the whole workload runs through BatchSearcher's worker pool over the
// shared index, one scratch per thread. Output is identical to the old
// read-at-a-time loop — per-query results come back in input order.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bwtk.h"
#include "util/stopwatch.h"

namespace {

struct Mapping {
  size_t position;
  char strand;
  int32_t mismatches;
};

struct TraceFlags {
  std::string trace_out;
  double sample_rate = -1.0;  // <0: unset; resolves to 0.01 with trace_out
  size_t slow_count = 8;
  size_t num_shards = 0;  // 0/1: monolithic index; >=2: sharded
};

double ResolvedSampleRate(const TraceFlags& flags) {
  if (flags.sample_rate >= 0.0) return flags.sample_rate;
  return flags.trace_out.empty() ? 0.0 : 0.01;
}

void PrintSlowQueries(const bwtk::obs::TraceSink& sink) {
  const auto slow = sink.SlowTraces();
  if (slow.empty()) return;
  std::printf("# slow queries (slowest first):\n");
  std::printf("# trace_id\tk\twall_us\tmatches\tnodes\tmax_depth"
              "\tnodes_per_depth\n");
  for (const auto& trace : slow) {
    std::string profile;
    for (size_t d = 0; d < trace.nodes_per_depth.size(); ++d) {
      if (d > 0) profile += ',';
      profile += std::to_string(trace.nodes_per_depth[d]);
    }
    std::printf("# %llu\t%d\t%.1f\t%llu\t%llu\t%llu\t%s\n",
                static_cast<unsigned long long>(trace.trace_id), trace.k,
                static_cast<double>(trace.wall_ns) * 1e-3,
                static_cast<unsigned long long>(trace.matches),
                static_cast<unsigned long long>(trace.NodesExpanded()),
                static_cast<unsigned long long>(trace.MaxDepth()),
                profile.c_str());
  }
}

int RunPipeline(const std::vector<bwtk::DnaCode>& genome,
                const std::vector<bwtk::FastqRecord>& reads, int32_t k,
                int num_threads, const TraceFlags& trace_flags) {
  // Queries 2i and 2i+1 are the forward and reverse strand of read i. Built
  // before the index so sharded mode can size its overlap to the longest
  // read (+ k), the exactness bound of the seam router.
  std::vector<bwtk::BatchQuery> queries;
  queries.reserve(reads.size() * 2);
  size_t max_read_length = 0;
  for (const auto& read : reads) {
    if (read.sequence.size() > max_read_length) {
      max_read_length = read.sequence.size();
    }
    queries.push_back({read.sequence, k});
    queries.push_back({bwtk::ReverseComplement(read.sequence), k});
  }

  const size_t num_shards = trace_flags.num_shards;
  std::optional<bwtk::KMismatchSearcher> searcher;
  std::optional<bwtk::ShardedIndex> sharded;
  bwtk::Stopwatch build_watch;
  if (num_shards >= 2) {
    bwtk::ShardedIndexOptions shard_options;
    shard_options.num_shards = num_shards;
    shard_options.overlap = max_read_length + static_cast<size_t>(k);
    shard_options.num_build_threads = num_threads;
    auto sharded_or = bwtk::ShardedIndex::Build(genome, shard_options);
    if (!sharded_or.ok()) {
      std::fprintf(stderr, "sharded index build failed: %s\n",
                   sharded_or.status().ToString().c_str());
      return 1;
    }
    sharded.emplace(std::move(sharded_or).value());
    std::printf(
        "# indexed %zu bp in %.3f s across %zu shards "
        "(overlap %zu, index memory: %.2f MB)\n",
        genome.size(), build_watch.ElapsedSeconds(), sharded->num_shards(),
        sharded->overlap(), sharded->MemoryUsage() / 1048576.0);
    const bwtk::FmIndex& shard0 = sharded->shard(0);
    std::printf("# rank kernel: %.*s, prefix table q: %u\n",
                static_cast<int>(shard0.rank_kernel_name().size()),
                shard0.rank_kernel_name().data(), shard0.prefix_table_q());
  } else {
    auto searcher_or = bwtk::KMismatchSearcher::Build(genome);
    if (!searcher_or.ok()) {
      std::fprintf(stderr, "index build failed: %s\n",
                   searcher_or.status().ToString().c_str());
      return 1;
    }
    searcher.emplace(std::move(searcher_or).value());
    std::printf("# indexed %zu bp in %.3f s (index memory: %.2f MB)\n",
                genome.size(), build_watch.ElapsedSeconds(),
                searcher->index().MemoryUsage() / 1048576.0);
    std::printf("# rank kernel: %.*s, prefix table q: %u\n",
                static_cast<int>(searcher->index().rank_kernel_name().size()),
                searcher->index().rank_kernel_name().data(),
                searcher->index().prefix_table_q());
  }

  bwtk::BatchOptions batch_options;
  batch_options.num_threads = num_threads;
  batch_options.trace_sample_rate = ResolvedSampleRate(trace_flags);
  batch_options.slow_trace_count = trace_flags.slow_count;
  batch_options.trace_out = trace_flags.trace_out;

  // Per-query latency comes from the registry's log2 histogram: diff the
  // process-wide snapshot around the batch so only this batch's queries
  // land in the estimate.
  const bwtk::obs::MetricsBlock before =
      bwtk::obs::MetricsRegistry::Instance().Snapshot();
  bwtk::Stopwatch map_watch;
  // The engines stay alive past the search so the trace sink (borrowed
  // below) remains valid through reporting.
  std::optional<bwtk::BatchSearcher> mono_engine;
  std::optional<bwtk::ShardedBatchSearcher> shard_engine;
  bwtk::BatchResult result;
  if (sharded) {
    shard_engine.emplace(&*sharded, batch_options);
    auto result_or = shard_engine->Search(queries);
    if (!result_or.ok()) {
      std::fprintf(stderr, "sharded search failed: %s\n",
                   result_or.status().ToString().c_str());
      return 1;
    }
    result = std::move(result_or).value();
  } else {
    mono_engine.emplace(*searcher, batch_options);
    result = mono_engine->Search(queries);
  }
  const int used_threads =
      sharded ? shard_engine->num_threads() : mono_engine->num_threads();
  const double map_seconds = map_watch.ElapsedSeconds();
  const bwtk::obs::MetricsBlock delta =
      bwtk::obs::Diff(bwtk::obs::MetricsRegistry::Instance().Snapshot(),
                      before);

  size_t mapped = 0;
  size_t multi = 0;
  size_t unmapped = 0;
  std::printf("# read\tstrand\tposition\tmismatches\n");
  for (size_t i = 0; i < reads.size(); ++i) {
    std::vector<Mapping> mappings;
    for (const char strand : {'+', '-'}) {
      const auto& hits = result.occurrences[2 * i + (strand == '-' ? 1 : 0)];
      for (const auto& hit : hits) {
        mappings.push_back({hit.position, strand, hit.mismatches});
      }
    }
    if (mappings.empty()) {
      ++unmapped;
      std::printf("%s\t*\t*\t*\n", reads[i].name.c_str());
      continue;
    }
    ++mapped;
    if (mappings.size() > 1) ++multi;
    // Report the best (fewest-mismatch) mapping first, like an aligner's
    // primary alignment.
    const Mapping* best = &mappings[0];
    for (const auto& mapping : mappings) {
      if (mapping.mismatches < best->mismatches) best = &mapping;
    }
    std::printf("%s\t%c\t%zu\t%d\n", reads[i].name.c_str(), best->strand,
                best->position, best->mismatches);
  }
  std::printf(
      "# mapped %zu/%zu reads (%zu multi-mapping, %zu unmapped) "
      "in %.3f s on %d threads (%.0f reads/s)\n",
      mapped, reads.size(), multi, unmapped, map_seconds, used_threads,
      reads.empty() ? 0.0 : reads.size() / map_seconds);
  std::printf("# M-tree leaves (n') total: %llu; search() calls: %llu\n",
              static_cast<unsigned long long>(result.stats.mtree_leaves),
              static_cast<unsigned long long>(result.stats.extend_calls));
  if (sharded) {
    std::printf("# sharded: %zu shards, %llu seam duplicates removed\n",
                sharded->num_shards(),
                static_cast<unsigned long long>(result.seam_hits_deduped));
  }

  // The one-line batch summary: throughput + latency quantiles + slow log.
  const bwtk::obs::Histogram& latency =
      delta.hists[bwtk::obs::kHistQueryNanos];
  const bwtk::obs::TraceSink* sink =
      sharded ? shard_engine->trace_sink() : mono_engine->trace_sink();
  std::printf(
      "# batch: %zu reads in %.3f s (%.0f reads/s), query p50=%.1fus "
      "p95=%.1fus (n=%llu), slow-log %zu\n",
      reads.size(), map_seconds,
      reads.empty() ? 0.0 : reads.size() / map_seconds,
      static_cast<double>(bwtk::obs::EstimateQuantile(latency, 0.50)) * 1e-3,
      static_cast<double>(bwtk::obs::EstimateQuantile(latency, 0.95)) * 1e-3,
      static_cast<unsigned long long>(latency.count),
      sink != nullptr ? sink->SlowTraces().size() : size_t{0});

  if (sink != nullptr) {
    std::printf("# traced %llu/%zu queries (sample rate %.3g)\n",
                static_cast<unsigned long long>(sink->traces_offered()),
                queries.size(), sink->options().sample_rate);
    PrintSlowQueries(*sink);
    if (!trace_flags.trace_out.empty()) {
      std::printf("# trace written to %s — open it at "
                  "https://ui.perfetto.dev\n",
                  trace_flags.trace_out.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TraceFlags trace_flags;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_flags.trace_out = arg + 12;
    } else if (std::strncmp(arg, "--trace-sample=", 15) == 0) {
      trace_flags.sample_rate = std::atof(arg + 15);
    } else if (std::strncmp(arg, "--slow=", 7) == 0) {
      trace_flags.slow_count = static_cast<size_t>(std::atoi(arg + 7));
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      const int shards = std::atoi(arg + 9);
      trace_flags.num_shards = shards > 0 ? static_cast<size_t>(shards) : 0;
    } else if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.size() >= 2) {
    const auto fasta = bwtk::ReadFastaFile(
        positional[0], {.ambiguity = bwtk::AmbiguityPolicy::kReplaceWithA});
    if (!fasta.ok() || fasta->empty()) {
      std::fprintf(stderr, "cannot read genome %s\n", positional[0]);
      return 1;
    }
    const auto reads = bwtk::ReadFastqFile(positional[1]);
    if (!reads.ok()) {
      std::fprintf(stderr, "cannot read reads %s\n", positional[1]);
      return 1;
    }
    const int32_t k =
        positional.size() > 2 ? std::atoi(positional[2]) : 3;
    const int num_threads =
        positional.size() > 3 ? std::atoi(positional[3]) : 0;
    return RunPipeline((*fasta)[0].sequence, *reads, k, num_threads,
                       trace_flags);
  }

  // Demo mode.
  std::printf("# demo: synthetic 2 Mbp genome, 50 reads of 150 bp, k = 3\n");
  bwtk::GenomeOptions genome_options;
  genome_options.length = 2 << 20;
  genome_options.repeat_fraction = 0.3;
  const auto genome = bwtk::GenerateGenome(genome_options).value();
  bwtk::ReadSimOptions read_options;
  read_options.read_length = 150;
  read_options.read_count = 50;
  const auto simulated = bwtk::SimulateReads(genome, read_options).value();
  return RunPipeline(genome, bwtk::ToFastq(simulated, "sim"), 3,
                     /*num_threads=*/0, trace_flags);
}
