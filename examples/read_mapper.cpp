// read_mapper — the paper's motivating application: map short reads onto a
// reference genome allowing up to k mismatches per alignment.
//
// Usage:
//   ./read_mapper                              # self-contained demo
//   ./read_mapper genome.fa reads.fq [k] [t]   # map a FASTQ against a FASTA
//                                              # with t worker threads
//
// In demo mode a synthetic genome and wgsim-like reads are generated, the
// genome is indexed, and each read (both strands) is aligned; output is a
// minimal tab-separated mapping report plus aggregate statistics.
//
// Mapping is batched: both strands of every read become one BatchQuery and
// the whole workload runs through BatchSearcher's worker pool over the
// shared index, one scratch per thread. Output is identical to the old
// read-at-a-time loop — per-query results come back in input order.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bwtk.h"
#include "util/stopwatch.h"

namespace {

struct Mapping {
  size_t position;
  char strand;
  int32_t mismatches;
};

int RunPipeline(const std::vector<bwtk::DnaCode>& genome,
                const std::vector<bwtk::FastqRecord>& reads, int32_t k,
                int num_threads) {
  bwtk::Stopwatch build_watch;
  auto searcher_or = bwtk::KMismatchSearcher::Build(genome);
  if (!searcher_or.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 searcher_or.status().ToString().c_str());
    return 1;
  }
  const auto& searcher = *searcher_or;
  std::printf("# indexed %zu bp in %.3f s (index memory: %.2f MB)\n",
              genome.size(), build_watch.ElapsedSeconds(),
              searcher.index().MemoryUsage() / 1048576.0);
  std::printf("# rank kernel: %.*s, prefix table q: %u\n",
              static_cast<int>(searcher.index().rank_kernel_name().size()),
              searcher.index().rank_kernel_name().data(),
              searcher.index().prefix_table_q());

  // Queries 2i and 2i+1 are the forward and reverse strand of read i.
  std::vector<bwtk::BatchQuery> queries;
  queries.reserve(reads.size() * 2);
  for (const auto& read : reads) {
    queries.push_back({read.sequence, k});
    queries.push_back({bwtk::ReverseComplement(read.sequence), k});
  }

  bwtk::Stopwatch map_watch;
  bwtk::BatchSearcher batch(searcher, {.num_threads = num_threads});
  const bwtk::BatchResult result = batch.Search(queries);
  const double map_seconds = map_watch.ElapsedSeconds();

  size_t mapped = 0;
  size_t multi = 0;
  size_t unmapped = 0;
  std::printf("# read\tstrand\tposition\tmismatches\n");
  for (size_t i = 0; i < reads.size(); ++i) {
    std::vector<Mapping> mappings;
    for (const char strand : {'+', '-'}) {
      const auto& hits = result.occurrences[2 * i + (strand == '-' ? 1 : 0)];
      for (const auto& hit : hits) {
        mappings.push_back({hit.position, strand, hit.mismatches});
      }
    }
    if (mappings.empty()) {
      ++unmapped;
      std::printf("%s\t*\t*\t*\n", reads[i].name.c_str());
      continue;
    }
    ++mapped;
    if (mappings.size() > 1) ++multi;
    // Report the best (fewest-mismatch) mapping first, like an aligner's
    // primary alignment.
    const Mapping* best = &mappings[0];
    for (const auto& mapping : mappings) {
      if (mapping.mismatches < best->mismatches) best = &mapping;
    }
    std::printf("%s\t%c\t%zu\t%d\n", reads[i].name.c_str(), best->strand,
                best->position, best->mismatches);
  }
  std::printf(
      "# mapped %zu/%zu reads (%zu multi-mapping, %zu unmapped) "
      "in %.3f s on %d threads (%.0f reads/s)\n",
      mapped, reads.size(), multi, unmapped, map_seconds, batch.num_threads(),
      reads.empty() ? 0.0 : reads.size() / map_seconds);
  std::printf("# M-tree leaves (n') total: %llu; search() calls: %llu\n",
              static_cast<unsigned long long>(result.stats.mtree_leaves),
              static_cast<unsigned long long>(result.stats.extend_calls));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    const auto fasta = bwtk::ReadFastaFile(
        argv[1], {.ambiguity = bwtk::AmbiguityPolicy::kReplaceWithA});
    if (!fasta.ok() || fasta->empty()) {
      std::fprintf(stderr, "cannot read genome %s\n", argv[1]);
      return 1;
    }
    const auto reads = bwtk::ReadFastqFile(argv[2]);
    if (!reads.ok()) {
      std::fprintf(stderr, "cannot read reads %s\n", argv[2]);
      return 1;
    }
    const int32_t k = argc > 3 ? std::atoi(argv[3]) : 3;
    const int num_threads = argc > 4 ? std::atoi(argv[4]) : 0;
    return RunPipeline((*fasta)[0].sequence, *reads, k, num_threads);
  }

  // Demo mode.
  std::printf("# demo: synthetic 2 Mbp genome, 50 reads of 150 bp, k = 3\n");
  bwtk::GenomeOptions genome_options;
  genome_options.length = 2 << 20;
  genome_options.repeat_fraction = 0.3;
  const auto genome = bwtk::GenerateGenome(genome_options).value();
  bwtk::ReadSimOptions read_options;
  read_options.read_length = 150;
  read_options.read_count = 50;
  const auto simulated = bwtk::SimulateReads(genome, read_options).value();
  return RunPipeline(genome, bwtk::ToFastq(simulated, "sim"), 3,
                     /*num_threads=*/0);
}
