// index_tool — build, persist, inspect and reuse FM-indexes from the
// command line; also prints the BWT-vs-suffix-tree space comparison the
// paper's Section II cites (0.5-2 bytes/char for BWT vs 12-17 for suffix
// trees).
//
//   $ ./index_tool                        # demo on a synthetic genome
//   $ ./index_tool build genome.fa out.idx
//   $ ./index_tool query out.idx acgtacgt [k]
//   $ ./index_tool upgrade in.idx out.idx [--prefix-q Q]
//
// `upgrade` is the opt-in migration path for format-v1 index files, which
// load fine but carry no q-gram prefix table: it loads the index, rebuilds
// the table from the live rank structure (FmIndex::RebuildPrefixTable), and
// saves a format-v2 file indistinguishable from one built with
// prefix_table_q = Q (default 12). It also re-tables v2 files at a
// different q; --prefix-q 0 strips the table instead. See docs/API.md.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bwtk.h"
#include "suffix/suffix_tree.h"
#include "util/stopwatch.h"

namespace {

void PrintIndexReport(const bwtk::FmIndex& index, double build_seconds) {
  const double bytes_per_base =
      static_cast<double>(index.MemoryUsage()) / index.text_size();
  std::printf("  text:            %zu bp\n", index.text_size());
  std::printf("  build time:      %.3f s\n", build_seconds);
  std::printf("  index memory:    %.2f MB (%.2f bytes/base)\n",
              index.MemoryUsage() / 1048576.0, bytes_per_base);
  std::printf("  checkpoint rate: %u, SA sample rate: %u\n",
              index.options().checkpoint_rate, index.options().sa_sample_rate);
}

int Demo() {
  std::printf("building FM-index and suffix tree over a 4 Mbp synthetic "
              "genome...\n");
  bwtk::GenomeOptions options;
  options.length = 4 << 20;
  const auto genome = bwtk::GenerateGenome(options).value();

  bwtk::Stopwatch fm_watch;
  const auto index = bwtk::FmIndex::Build(genome).value();
  const double fm_seconds = fm_watch.ElapsedSeconds();
  std::printf("\nFM-index (the paper's BWT array + rankall + SA samples):\n");
  PrintIndexReport(index, fm_seconds);

  bwtk::Stopwatch st_watch;
  const auto tree = bwtk::SuffixTree::Build(genome).value();
  const double st_seconds = st_watch.ElapsedSeconds();
  std::printf("\nsuffix tree (Ukkonen):\n");
  std::printf("  build time:      %.3f s\n", st_seconds);
  std::printf("  memory:          %.2f MB (%.2f bytes/base)\n",
              tree.MemoryUsage() / 1048576.0,
              static_cast<double>(tree.MemoryUsage()) / genome.size());
  std::printf("\nspace ratio suffix-tree : BWT-index = %.1f : 1\n",
              static_cast<double>(tree.MemoryUsage()) / index.MemoryUsage());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();
  const std::string mode = argv[1];
  if (mode == "build" && argc == 4) {
    const auto fasta = bwtk::ReadFastaFile(
        argv[2], {.ambiguity = bwtk::AmbiguityPolicy::kReplaceWithA});
    if (!fasta.ok() || fasta->empty()) {
      std::fprintf(stderr, "cannot read %s\n", argv[2]);
      return 1;
    }
    bwtk::Stopwatch watch;
    const auto index_or = bwtk::FmIndex::Build((*fasta)[0].sequence);
    if (!index_or.ok()) {
      std::fprintf(stderr, "%s\n", index_or.status().ToString().c_str());
      return 1;
    }
    PrintIndexReport(*index_or, watch.ElapsedSeconds());
    const auto save = index_or->SaveToFile(argv[3]);
    if (!save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
    std::printf("  saved to:        %s\n", argv[3]);
    return 0;
  }
  if (mode == "query" && argc >= 4) {
    const auto searcher_or = bwtk::KMismatchSearcher::FromIndexFile(argv[2]);
    if (!searcher_or.ok()) {
      std::fprintf(stderr, "%s\n", searcher_or.status().ToString().c_str());
      return 1;
    }
    const int32_t k = argc > 4 ? std::atoi(argv[4]) : 2;
    const auto hits_or = searcher_or->Search(argv[3], k);
    if (!hits_or.ok()) {
      std::fprintf(stderr, "%s\n", hits_or.status().ToString().c_str());
      return 1;
    }
    for (const auto& hit : *hits_or) {
      std::printf("%zu\t%d\n", hit.position, hit.mismatches);
    }
    std::printf("# %zu occurrences with k=%d\n", hits_or->size(), k);
    return 0;
  }
  if (mode == "upgrade" && (argc == 4 || argc == 6)) {
    uint32_t q = 12;
    if (argc == 6) {
      if (std::strcmp(argv[4], "--prefix-q") != 0) {
        std::fprintf(stderr, "unknown option %s (expected --prefix-q)\n",
                     argv[4]);
        return 2;
      }
      q = static_cast<uint32_t>(std::atoi(argv[5]));
    }
    auto index_or = bwtk::FmIndex::LoadFromFile(argv[2]);
    if (!index_or.ok()) {
      std::fprintf(stderr, "%s\n", index_or.status().ToString().c_str());
      return 1;
    }
    const uint32_t old_q = index_or->prefix_table_q();
    std::printf("loaded %s: %zu bp, prefix table q=%u\n", argv[2],
                index_or->text_size(), old_q);
    bwtk::Stopwatch watch;
    const auto rebuild = index_or->RebuildPrefixTable(q);
    if (!rebuild.ok()) {
      std::fprintf(stderr, "%s\n", rebuild.ToString().c_str());
      return 1;
    }
    if (q > 0) {
      std::printf("rebuilt prefix table at q=%u in %.3f s\n", q,
                  watch.ElapsedSeconds());
    } else {
      std::printf("stripped the prefix table\n");
    }
    const auto save = index_or->SaveToFile(argv[3]);
    if (!save.ok()) {
      std::fprintf(stderr, "%s\n", save.ToString().c_str());
      return 1;
    }
    PrintIndexReport(*index_or, watch.ElapsedSeconds());
    std::printf("  saved to:        %s\n", argv[3]);
    return 0;
  }
  std::fprintf(stderr,
               "usage: %s | %s build genome.fa out.idx | %s query out.idx "
               "pattern [k] | %s upgrade in.idx out.idx [--prefix-q Q]\n",
               argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
