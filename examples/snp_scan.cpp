// snp_scan — motif scanning with mismatches, the "polymorphisms or
// mutations among individuals" scenario from the paper's introduction.
//
// A known motif (e.g. a transcription-factor binding site or probe
// sequence) is searched across a genome allowing k substitutions; for every
// occurrence the exact variant positions are reported — i.e. candidate SNP
// sites relative to the motif.
//
//   $ ./snp_scan [k]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bwtk.h"

namespace {

// Renders which motif positions differ at a given occurrence.
std::string VariantString(const std::vector<bwtk::DnaCode>& genome,
                          const std::vector<bwtk::DnaCode>& motif,
                          size_t position) {
  std::string out;
  for (size_t i = 0; i < motif.size(); ++i) {
    const bwtk::DnaCode got = genome[position + i];
    if (got != motif[i]) {
      if (!out.empty()) out += ",";
      out += std::to_string(i) + ":" +
             std::string(1, bwtk::CodeToChar(motif[i])) + ">" +
             std::string(1, bwtk::CodeToChar(got));
    }
  }
  return out.empty() ? "exact" : out;
}

}  // namespace

int main(int argc, char** argv) {
  const int32_t k = argc > 1 ? std::atoi(argv[1]) : 2;

  // Build a genome and plant diverged copies of a motif, mimicking a
  // binding site under mutation pressure.
  bwtk::GenomeOptions genome_options;
  genome_options.length = 1 << 20;
  genome_options.repeat_fraction = 0.2;
  genome_options.seed = 71;
  auto genome = bwtk::GenerateGenome(genome_options).value();

  const auto motif = bwtk::EncodeDna("tgacgtcatcgatacg").value();  // 16 bp
  bwtk::Rng rng(5);
  int planted = 0;
  for (size_t site = 40000; site + motif.size() < genome.size();
       site += 90000 + rng.NextBounded(20000)) {
    for (size_t i = 0; i < motif.size(); ++i) {
      genome[site + i] = motif[i];
    }
    // Apply 0..k substitutions to this copy.
    const int edits = static_cast<int>(rng.NextBounded(k + 1));
    for (int e = 0; e < edits; ++e) {
      const size_t where = rng.NextBounded(motif.size());
      genome[site + where] =
          static_cast<bwtk::DnaCode>((genome[site + where] + 1) & 3);
    }
    ++planted;
  }
  std::printf("# planted %d diverged motif copies in a %zu bp genome\n",
              planted, genome.size());

  const auto searcher = bwtk::KMismatchSearcher::Build(genome).value();
  bwtk::SearchStats stats;
  const auto hits = searcher.Search(motif, k, &stats);

  std::printf("# motif %s, k=%d -> %zu occurrences\n",
              bwtk::DecodeDna(motif).c_str(), k, hits.size());
  std::printf("# position\tmismatches\tvariants\n");
  size_t shown = 0;
  for (const auto& hit : hits) {
    std::printf("%zu\t%d\t%s\n", hit.position, hit.mismatches,
                VariantString(genome, motif, hit.position).c_str());
    if (++shown >= 25) {
      std::printf("# ... (%zu more)\n", hits.size() - shown);
      break;
    }
  }
  std::printf("# M-tree: %llu leaves; reused pairs: %llu\n",
              static_cast<unsigned long long>(stats.mtree_leaves),
              static_cast<unsigned long long>(stats.reused_nodes));
  return hits.size() >= static_cast<size_t>(planted) ? 0 : 1;
}
