// serve_tool — the always-on query service from the command line: run the
// TCP front-end over a long-lived serve::Session, query it, and check it
// against direct engine output. Protocol and operator runbook are in
// docs/SERVING.md.
//
//   $ ./serve_tool serve --genome 1048576 --port-file /tmp/port &
//   $ ./serve_tool query 127.0.0.1 $(cat /tmp/port) acgtacgt 2
//   $ ./serve_tool query 127.0.0.1 $(cat /tmp/port) acgtacgt 2 stree
//   $ ./serve_tool batch 127.0.0.1 $(cat /tmp/port) patterns.txt 2
//   $ ./serve_tool stats 127.0.0.1 $(cat /tmp/port)
//   $ kill -TERM %1           # graceful drain, then exit
//
//   $ ./serve_tool local patterns.txt 2 --genome 1048576
//   # same output format as `batch` — diff them to prove the served
//   # results are byte-identical to the direct engine (CI does exactly
//   # this; see .github/workflows/ci.yml, serve-smoke).
//
// The synthetic-genome flags (--genome LENGTH --seed S) make server and
// local runs reproducible without an index file; --index loads a
// serialized FM-index instead.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bwtk.h"

namespace {

volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

struct Flags {
  size_t genome_length = 1 << 20;
  uint64_t seed = 42;
  std::string index_path;
  std::string engine = "algorithm_a";
  int threads = 2;
  uint16_t port = 0;
  std::string port_file;
  int timeout_ms = 0;
  size_t queue_capacity = 1024;
  size_t max_inflight = 4096;
  size_t conn_inflight = 256;
  double trace_sample = 0.0;
  std::string trace_out;
  // HTTP telemetry (serve/http_exposition.h). The listener starts only when
  // one of the --http-* flags is given.
  bool http = false;
  uint16_t http_port = 0;
  std::string http_port_file;
  // After SIGTERM drain, keep the telemetry endpoints alive this long so
  // probes observe /readyz flipping to 503 before the process exits
  // (k8s-style termination grace; CI's scrape-smoke relies on it).
  int drain_grace_ms = 0;
};

// Consumes "--name value" pairs from argv after the positional arguments.
bool ParseFlags(int argc, char** argv, int first, Flags* flags) {
  for (int i = first; i < argc; i += 2) {
    const std::string name = argv[i];
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag %s needs a value\n", name.c_str());
      return false;
    }
    const std::string value = argv[i + 1];
    if (name == "--genome") {
      flags->genome_length = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "--seed") {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "--index") {
      flags->index_path = value;
    } else if (name == "--engine") {
      flags->engine = value;
    } else if (name == "--threads") {
      flags->threads = std::atoi(value.c_str());
    } else if (name == "--port") {
      flags->port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (name == "--port-file") {
      flags->port_file = value;
    } else if (name == "--timeout-ms") {
      flags->timeout_ms = std::atoi(value.c_str());
    } else if (name == "--queue") {
      flags->queue_capacity = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "--max-inflight") {
      flags->max_inflight = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "--conn-inflight") {
      flags->conn_inflight = std::strtoull(value.c_str(), nullptr, 10);
    } else if (name == "--trace-sample") {
      flags->trace_sample = std::atof(value.c_str());
    } else if (name == "--trace-out") {
      flags->trace_out = value;
    } else if (name == "--http-port") {
      flags->http = true;
      flags->http_port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (name == "--http-port-file") {
      flags->http = true;
      flags->http_port_file = value;
    } else if (name == "--drain-grace-ms") {
      flags->drain_grace_ms = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", name.c_str());
      return false;
    }
  }
  return true;
}

bool ResolveEngine(const std::string& name, bwtk::BatchEngine* engine) {
  if (name == "algorithm_a") {
    *engine = bwtk::BatchEngine::kAlgorithmA;
  } else if (name == "stree") {
    *engine = bwtk::BatchEngine::kSTree;
  } else if (name == "kerror") {
    *engine = bwtk::BatchEngine::kKError;
  } else if (name == "wildcard") {
    *engine = bwtk::BatchEngine::kWildcard;
  } else if (name == "dictionary") {
    *engine = bwtk::BatchEngine::kDictionary;
  } else if (name == "bidirectional") {
    *engine = bwtk::BatchEngine::kBidirectional;
  } else if (name == "auto") {
    *engine = bwtk::BatchEngine::kAuto;
  } else {
    std::fprintf(stderr,
                 "unknown engine %s (algorithm_a|stree|kerror|wildcard|"
                 "dictionary|bidirectional|auto)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// bidirectional and auto need a BiFmIndex alongside the forward index.
// MakeIndex discards the genome text (and --index may load a forward-only
// file), so upgrade the forward index by moving it into FromForward, which
// inverts the BWT to recover the text and builds the reverse half from it;
// the Session then points at the pair's forward() half.
bool NeedsBidir(bwtk::BatchEngine engine) {
  return engine == bwtk::BatchEngine::kBidirectional ||
         engine == bwtk::BatchEngine::kAuto;
}

// The index behind both `serve` and `local`: loaded, or generated
// deterministically from (--genome, --seed).
bwtk::Result<bwtk::FmIndex> MakeIndex(const Flags& flags) {
  if (!flags.index_path.empty()) {
    return bwtk::FmIndex::LoadFromFile(flags.index_path);
  }
  bwtk::GenomeOptions genome_options;
  genome_options.length = flags.genome_length;
  genome_options.seed = flags.seed;
  BWTK_ASSIGN_OR_RETURN(const auto genome,
                        bwtk::GenerateGenome(genome_options));
  return bwtk::FmIndex::Build(genome);
}

bwtk::serve::SessionOptions MakeSessionOptions(const Flags& flags,
                                               bwtk::BatchEngine engine) {
  bwtk::serve::SessionOptions options;
  options.num_threads = flags.threads;
  options.queue_capacity = flags.queue_capacity;
  options.max_inflight = flags.max_inflight;
  options.batch.engine = engine;
  options.batch.trace_sample_rate = flags.trace_sample;
  options.batch.trace_out = flags.trace_out;
  return options;
}

std::vector<std::string> ReadPatternFile(const std::string& path) {
  std::vector<std::string> patterns;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) patterns.push_back(line);
  }
  return patterns;
}

// Shared output format for `batch` and `local`, diffable byte for byte:
// one line per hit, then one summary comment.
void PrintHits(size_t query_index, const std::vector<bwtk::Occurrence>& hits) {
  for (const auto& hit : hits) {
    std::printf("%zu\t%zu\t%d\n", query_index, hit.position, hit.mismatches);
  }
}

int RunServe(const Flags& flags) {
  bwtk::BatchEngine engine;
  if (!ResolveEngine(flags.engine, &engine)) return 2;
  auto index = MakeIndex(flags);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  std::optional<bwtk::BiFmIndex> bidir;
  auto options = MakeSessionOptions(flags, engine);
  const bwtk::FmIndex* forward = &*index;
  if (NeedsBidir(engine)) {
    auto bidir_or = bwtk::BiFmIndex::FromForward(std::move(*index));
    if (!bidir_or.ok()) {
      std::fprintf(stderr, "%s\n", bidir_or.status().ToString().c_str());
      return 1;
    }
    bidir.emplace(std::move(bidir_or).value());
    options.batch.bidir_indexes = {&*bidir};
    forward = &bidir->forward();
  }
  bwtk::serve::Session session(forward, options);
  bwtk::serve::ServerOptions server_options;
  server_options.port = flags.port;
  server_options.max_inflight_per_connection = flags.conn_inflight;
  server_options.request_timeout = std::chrono::milliseconds(flags.timeout_ms);
  bwtk::serve::Server server(&session, server_options);
  const bwtk::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  if (!flags.port_file.empty()) {
    // Written atomically-enough for scripts: the port only appears once
    // the listener is live (rename would be overkill for a smoke tool).
    std::ofstream out(flags.port_file);
    out << server.port() << "\n";
  }

  // Optional live telemetry: a windowed aggregator over the registry and
  // the HTTP exposition endpoints. Ready only once everything above is up.
  std::unique_ptr<bwtk::obs::WindowedAggregator> aggregator;
  std::unique_ptr<bwtk::serve::HttpExpositionServer> exposition;
  if (flags.http) {
    aggregator = std::make_unique<bwtk::obs::WindowedAggregator>(
        &bwtk::obs::MetricsRegistry::Instance());
    aggregator->StartTicker();
    bwtk::serve::HttpExpositionOptions http_options;
    http_options.port = flags.http_port;
    exposition = std::make_unique<bwtk::serve::HttpExpositionServer>(
        aggregator.get(), &session, &server, http_options);
    const bwtk::Status http_started = exposition->Start();
    if (!http_started.ok()) {
      std::fprintf(stderr, "%s\n", http_started.ToString().c_str());
      return 1;
    }
    exposition->SetReady(true);  // index loaded, front-end listening
    if (!flags.http_port_file.empty()) {
      std::ofstream out(flags.http_port_file);
      out << exposition->port() << "\n";
    }
    std::fprintf(stderr, "telemetry on http://127.0.0.1:%u (/metrics "
                 "/varz.json /healthz /readyz)\n",
                 exposition->port());
  }
  std::fprintf(stderr, "serving %s on 127.0.0.1:%u (%zu bp, %d workers)\n",
               bwtk::BatchEngineName(engine).data(), server.port(),
               forward->text_size(), session.num_threads());

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: stop accepting bytes, let admitted queries finish.
  // The telemetry endpoints stay up through the drain (and the grace
  // window) so /readyz observably reports 503 while /healthz stays 200 —
  // exactly what a load balancer needs to route around a terminating pod.
  std::fprintf(stderr, "draining...\n");
  server.Stop();
  session.Drain();
  if (flags.drain_grace_ms > 0 && exposition != nullptr) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.drain_grace_ms));
  }
  const bwtk::serve::SessionStats stats = session.Stats();
  std::fprintf(stderr,
               "served %llu queries (%llu rejected overloaded, %llu "
               "rejected unavailable)\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected_overloaded),
               static_cast<unsigned long long>(stats.rejected_unavailable));
  return 0;
}

int RunQuery(const std::string& host, uint16_t port,
             const std::string& pattern, int32_t k,
             std::optional<bwtk::BatchEngine> engine) {
  auto client = bwtk::serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  const auto response = (*client)->Query(pattern, k, /*want_stats=*/false,
                                         engine);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  const bwtk::Status outcome = bwtk::serve::FromWireStatus(
      response->status, response->message);
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s\n", outcome.ToString().c_str());
    return 1;
  }
  for (const auto& hit : response->hits) {
    std::printf("%zu\t%d\n", hit.position, hit.mismatches);
  }
  std::printf("# %zu occurrences with k=%d\n", response->hits.size(), k);
  return 0;
}

int RunBatch(const std::string& host, uint16_t port, const std::string& file,
             int32_t k) {
  const std::vector<std::string> patterns = ReadPatternFile(file);
  auto client_or = bwtk::serve::Client::Connect(host, port);
  if (!client_or.ok()) {
    std::fprintf(stderr, "%s\n", client_or.status().ToString().c_str());
    return 1;
  }
  bwtk::serve::Client& client = **client_or;
  // Pipeline under the server's advertised per-connection cap; collect
  // responses (any order) into input-order slots.
  const size_t window =
      std::max<size_t>(1, client.hello().max_inflight / 2);
  std::vector<std::vector<bwtk::Occurrence>> hits(patterns.size());
  std::vector<uint64_t> id_of(patterns.size(), 0);
  size_t sent = 0;
  size_t received = 0;
  size_t failed = 0;
  while (received < patterns.size()) {
    while (sent < patterns.size() && sent - received < window) {
      const auto id = client.SendQuery(patterns[sent], k);
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      id_of[sent] = id.value();
      ++sent;
    }
    auto response = client.ReceiveResponse();
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
      return 1;
    }
    // request ids are assigned densely in submission order: recover the
    // input slot without a map.
    const size_t slot =
        static_cast<size_t>(response->request_id - id_of[0]);
    if (slot >= patterns.size() || id_of[slot] != response->request_id) {
      std::fprintf(stderr, "unexpected request id %llu\n",
                   static_cast<unsigned long long>(response->request_id));
      return 1;
    }
    if (response->status != bwtk::serve::WireStatus::kOk) {
      std::fprintf(stderr, "query %zu: %s\n", slot,
                   bwtk::serve::FromWireStatus(response->status,
                                               response->message)
                       .ToString()
                       .c_str());
      ++failed;
    } else {
      hits[slot] = std::move(response->hits);
    }
    ++received;
  }
  size_t total = 0;
  for (size_t q = 0; q < patterns.size(); ++q) {
    PrintHits(q, hits[q]);
    total += hits[q].size();
  }
  std::printf("# %zu queries, %zu hits, k=%d\n", patterns.size(), total, k);
  return failed == 0 ? 0 : 1;
}

int RunStats(const std::string& host, uint16_t port) {
  auto client = bwtk::serve::Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  const auto stats = (*client)->GetStats();
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("engine:               %s%s\n",
              (*client)->hello().engine.c_str(),
              (*client)->hello().sharded ? " (sharded)" : "");
  std::printf("queue_depth:          %zu\n", stats->queue_depth);
  std::printf("running:              %zu\n", stats->running);
  std::printf("inflight:             %zu\n", stats->inflight);
  std::printf("submitted:            %llu\n",
              static_cast<unsigned long long>(stats->submitted));
  std::printf("completed:            %llu\n",
              static_cast<unsigned long long>(stats->completed));
  std::printf("rejected_overloaded:  %llu\n",
              static_cast<unsigned long long>(stats->rejected_overloaded));
  std::printf("rejected_unavailable: %llu\n",
              static_cast<unsigned long long>(stats->rejected_unavailable));
  std::printf("memo_hits:            %llu\n",
              static_cast<unsigned long long>(stats->memo_hits));
  std::printf("result_cache_hits:    %llu\n",
              static_cast<unsigned long long>(stats->result_cache_hits));
  std::printf("result_cache_misses:  %llu\n",
              static_cast<unsigned long long>(stats->result_cache_misses));
  std::printf("shard_exact_shortcuts:%llu\n",
              static_cast<unsigned long long>(stats->shard_exact_shortcuts));
  std::printf("accepting:            %s\n", stats->accepting ? "yes" : "no");
  return 0;
}

// Same queries, no network: the byte-identity baseline for `batch`.
int RunLocal(const std::string& file, int32_t k, const Flags& flags) {
  bwtk::BatchEngine engine;
  if (!ResolveEngine(flags.engine, &engine)) return 2;
  auto index = MakeIndex(flags);
  if (!index.ok()) {
    std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> patterns = ReadPatternFile(file);
  std::optional<bwtk::BiFmIndex> bidir;
  auto options = MakeSessionOptions(flags, engine);
  const bwtk::FmIndex* forward = &*index;
  if (NeedsBidir(engine)) {
    auto bidir_or = bwtk::BiFmIndex::FromForward(std::move(*index));
    if (!bidir_or.ok()) {
      std::fprintf(stderr, "%s\n", bidir_or.status().ToString().c_str());
      return 1;
    }
    bidir.emplace(std::move(bidir_or).value());
    options.batch.bidir_indexes = {&*bidir};
    forward = &bidir->forward();
  }
  bwtk::serve::Session session(forward, options);
  std::vector<bwtk::serve::Ticket> tickets;
  tickets.reserve(patterns.size());
  size_t total = 0;
  for (size_t q = 0; q < patterns.size(); ++q) {
    const auto ticket = session.Submit(patterns[q], k);
    if (!ticket.ok()) {
      std::fprintf(stderr, "query %zu: %s\n", q,
                   ticket.status().ToString().c_str());
      return 1;
    }
    auto result = session.Wait(ticket.value());
    if (!result.ok() || !result->status.ok()) {
      std::fprintf(stderr, "query %zu failed\n", q);
      return 1;
    }
    PrintHits(q, result->hits);
    total += result->hits.size();
  }
  std::printf("# %zu queries, %zu hits, k=%d\n", patterns.size(), total, k);
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s serve [--genome N] [--seed S] [--index f.idx] [--engine E]\n"
      "           [--threads N] [--port P] [--port-file PATH]\n"
      "           [--timeout-ms T] [--queue N] [--max-inflight N]\n"
      "           [--conn-inflight N] [--trace-sample R] [--trace-out PATH]\n"
      "           [--http-port P] [--http-port-file PATH]\n"
      "           [--drain-grace-ms T]\n"
      "  %s query HOST PORT PATTERN [k [engine]]\n"
      "  %s batch HOST PORT PATTERNS_FILE [k]\n"
      "  %s stats HOST PORT\n"
      "  %s local PATTERNS_FILE [k] [index/engine flags as for serve]\n",
      argv0, argv0, argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "serve") {
    Flags flags;
    if (!ParseFlags(argc, argv, 2, &flags)) return 2;
    return RunServe(flags);
  }
  if (mode == "query" && argc >= 5) {
    const int32_t k = argc > 5 ? std::atoi(argv[5]) : 0;
    // Optional trailing engine name: a per-query override carried in the
    // QUERY frame's trailer (docs/SERVING.md §4.3) — this one query runs
    // under that engine instead of the session default.
    std::optional<bwtk::BatchEngine> engine;
    if (argc > 6) {
      bwtk::BatchEngine resolved;
      if (!ResolveEngine(argv[6], &resolved)) return 2;
      engine = resolved;
    }
    return RunQuery(argv[2], static_cast<uint16_t>(std::atoi(argv[3])),
                    argv[4], k, engine);
  }
  if (mode == "batch" && argc >= 5) {
    const int32_t k = argc > 5 ? std::atoi(argv[5]) : 0;
    return RunBatch(argv[2], static_cast<uint16_t>(std::atoi(argv[3])),
                    argv[4], k);
  }
  if (mode == "stats" && argc >= 4) {
    return RunStats(argv[2], static_cast<uint16_t>(std::atoi(argv[3])));
  }
  if (mode == "local" && argc >= 3) {
    Flags flags;
    int first_flag = 3;
    int32_t k = 0;
    if (argc > 3 && argv[3][0] != '-') {
      k = std::atoi(argv[3]);
      first_flag = 4;
    }
    if (!ParseFlags(argc, argv, first_flag, &flags)) return 2;
    return RunLocal(argv[2], k, flags);
  }
  return Usage(argv[0]);
}
