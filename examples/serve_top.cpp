// serve_top: a terminal dashboard for a live bwtk serving process.
//
// Polls the telemetry listener's /varz.json endpoint (see
// serve::HttpExpositionServer and docs/OBSERVABILITY.md "Live telemetry")
// and renders the serving picture an operator reaches for first: query
// rates and rolling latency quantiles per window, admission state, the
// reuse-tier hit rates, per-engine served counts, and the busiest client
// connections. No curses dependency — plain ANSI clear + redraw.
//
// Usage:
//   serve_top --port P [--host H] [--interval-ms T] [--once] [--top N]
//
//   --port P         telemetry port (serve_tool --http-port / port file)
//   --host H         telemetry host (default 127.0.0.1)
//   --interval-ms T  refresh period (default 1000)
//   --once           print a single snapshot without clearing and exit
//                    (scriptable; CI smoke uses this)
//   --top N          show the N busiest connections (default 5)

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bwtk.h"

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int interval_ms = 1000;
  bool once = false;
  size_t top = 5;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port P [--host H] [--interval-ms T] [--once] [--top N]\n"
      "\n"
      "Live dashboard over a bwtk serving process's /varz.json telemetry\n"
      "endpoint (serve_tool serve --http-port ...).\n",
      argv0);
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--host") {
      const char* value = next("--host");
      if (value == nullptr) return false;
      flags->host = value;
    } else if (arg == "--port") {
      const char* value = next("--port");
      if (value == nullptr) return false;
      flags->port = static_cast<uint16_t>(std::atoi(value));
    } else if (arg == "--interval-ms") {
      const char* value = next("--interval-ms");
      if (value == nullptr) return false;
      flags->interval_ms = std::atoi(value);
    } else if (arg == "--once") {
      flags->once = true;
    } else if (arg == "--top") {
      const char* value = next("--top");
      if (value == nullptr) return false;
      flags->top = static_cast<size_t>(std::atoll(value));
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", std::string(arg).c_str());
      return false;
    }
  }
  if (flags->port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return false;
  }
  if (flags->interval_ms <= 0) flags->interval_ms = 1000;
  return true;
}

// One blocking HTTP/1.1 GET; the exposition server closes after each
// response, so "read until EOF, split on the blank line" is the whole
// client.
bwtk::Result<std::string> HttpGet(const std::string& host, uint16_t port,
                                  const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return bwtk::Status::IoError("socket: " +
                                 std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    hostent* resolved = ::gethostbyname(host.c_str());
    if (resolved == nullptr || resolved->h_addr_list[0] == nullptr) {
      ::close(fd);
      return bwtk::Status::InvalidArgument("cannot resolve host: " + host);
    }
    std::memcpy(&addr.sin_addr, resolved->h_addr_list[0],
                sizeof(addr.sin_addr));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return bwtk::Status::IoError("connect " + host + ":" +
                                 std::to_string(port) + ": " + error);
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  size_t written = 0;
  while (written < request.size()) {
    const ssize_t n = ::send(fd, request.data() + written,
                             request.size() - written, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return bwtk::Status::IoError("send failed");
    }
    written += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      ::close(fd);
      return bwtk::Status::IoError("recv: " +
                                   std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return bwtk::Status::Corruption("malformed HTTP response");
  }
  const size_t line_end = response.find("\r\n");
  const std::string_view status_line =
      std::string_view(response).substr(0, line_end);
  if (status_line.find(" 200 ") == std::string_view::npos) {
    return bwtk::Status::Unavailable("HTTP status: " +
                                     std::string(status_line));
  }
  return response.substr(head_end + 4);
}

double Rate(const bwtk::obs::JsonValue& varz, std::string_view window,
            std::string_view counter) {
  const bwtk::obs::JsonValue* value =
      varz.Get("windows", window, "rates", counter);
  return value == nullptr ? 0.0 : value->AsNumber();
}

uint64_t Uint(const bwtk::obs::JsonValue& varz,
              std::initializer_list<std::string_view> path) {
  const bwtk::obs::JsonValue* value = &varz;
  for (const std::string_view key : path) {
    value = value->Find(key);
    if (value == nullptr) return 0;
  }
  return value->AsUint();
}

std::string Millis(double nanos) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", nanos / 1e6);
  return buffer;
}

void Render(const bwtk::obs::JsonValue& varz, size_t top) {
  const bwtk::obs::JsonValue* ready = varz.Find("ready");
  const bwtk::obs::JsonValue* engine = varz.Find("engine");
  std::printf("bwtk serve_top — engine=%s  %s  (ticks=%llu resets=%llu)\n",
              engine != nullptr ? engine->string_value.c_str() : "?",
              ready != nullptr && ready->bool_value ? "READY" : "NOT READY",
              static_cast<unsigned long long>(varz.Find("ticks") != nullptr
                                                 ? varz.Find("ticks")->AsUint()
                                                 : 0),
              static_cast<unsigned long long>(
                  varz.Find("resets") != nullptr ? varz.Find("resets")->AsUint()
                                                 : 0));

  std::printf(
      "\nsession: queue=%llu running=%llu inflight=%llu "
      "submitted=%llu completed=%llu overloaded=%llu\n",
      static_cast<unsigned long long>(Uint(varz, {"session", "queue_depth"})),
      static_cast<unsigned long long>(Uint(varz, {"session", "running"})),
      static_cast<unsigned long long>(Uint(varz, {"session", "inflight"})),
      static_cast<unsigned long long>(Uint(varz, {"session", "submitted"})),
      static_cast<unsigned long long>(Uint(varz, {"session", "completed"})),
      static_cast<unsigned long long>(
          Uint(varz, {"session", "rejected_overloaded"})));

  // Rolling rates + latency per window: the tentpole view.
  std::printf("\n%-6s %12s %12s %12s %12s %12s\n", "window", "submit/s",
              "served/s", "p50 ms", "p95 ms", "p99 ms");
  for (const char* window : {"10s", "1m", "5m"}) {
    const bwtk::obs::JsonValue* latency =
        varz.Get("windows", window, "latency", "query_nanos");
    const double p50 =
        latency != nullptr ? latency->Get("p50") != nullptr
                                 ? latency->Get("p50")->AsNumber()
                                 : 0.0
                           : 0.0;
    const double p95 = latency != nullptr && latency->Get("p95") != nullptr
                           ? latency->Get("p95")->AsNumber()
                           : 0.0;
    const double p99 = latency != nullptr && latency->Get("p99") != nullptr
                           ? latency->Get("p99")->AsNumber()
                           : 0.0;
    std::printf("%-6s %12.1f %12.1f %12s %12s %12s\n", window,
                Rate(varz, window, "serve_submitted"),
                Rate(varz, window, "serve_completed"), Millis(p50).c_str(),
                Millis(p95).c_str(), Millis(p99).c_str());
  }

  // Reuse tiers (PR 8): cumulative hit counts + 1m rates.
  std::printf("\nreuse:  memo_hits=%llu  result_cache=%llu/%llu hit/miss  "
              "shard_shortcuts=%llu   (1m rates: %.1f %.1f %.1f)\n",
              static_cast<unsigned long long>(
                  Uint(varz, {"session", "memo_hits"})),
              static_cast<unsigned long long>(
                  Uint(varz, {"session", "result_cache_hits"})),
              static_cast<unsigned long long>(
                  Uint(varz, {"session", "result_cache_misses"})),
              static_cast<unsigned long long>(
                  Uint(varz, {"session", "shard_exact_shortcuts"})),
              Rate(varz, "1m", "memo_hits"),
              Rate(varz, "1m", "result_cache_hits"),
              Rate(varz, "1m", "shard_exact_shortcuts"));

  // Per-engine served counts over 1m.
  std::printf("engines (1m served/s): A=%.1f stree=%.1f kerror=%.1f "
              "wildcard=%.1f dict=%.1f\n",
              Rate(varz, "1m", "serve_served_algorithm_a"),
              Rate(varz, "1m", "serve_served_stree"),
              Rate(varz, "1m", "serve_served_kerror"),
              Rate(varz, "1m", "serve_served_wildcard"),
              Rate(varz, "1m", "serve_served_dictionary"));

  const bwtk::obs::JsonValue* connections = varz.Find("connections");
  if (connections != nullptr &&
      connections->kind == bwtk::obs::JsonValue::Kind::kArray) {
    std::vector<const bwtk::obs::JsonValue*> rows;
    rows.reserve(connections->array.size());
    for (const bwtk::obs::JsonValue& conn : connections->array) {
      rows.push_back(&conn);
    }
    std::sort(rows.begin(), rows.end(),
              [](const bwtk::obs::JsonValue* a, const bwtk::obs::JsonValue* b) {
                const auto queries = [](const bwtk::obs::JsonValue* conn) {
                  const bwtk::obs::JsonValue* q = conn->Find("queries");
                  return q == nullptr ? uint64_t{0} : q->AsUint();
                };
                return queries(a) > queries(b);
              });
    std::printf("\nconnections: %zu open (top %zu by queries)\n", rows.size(),
                std::min(top, rows.size()));
    std::printf("%6s %10s %10s %12s %12s %8s %8s\n", "id", "queries",
                "overload", "bytes_in", "bytes_out", "age s", "idle s");
    for (size_t i = 0; i < rows.size() && i < top; ++i) {
      const bwtk::obs::JsonValue& conn = *rows[i];
      const auto field = [&conn](std::string_view key) {
        const bwtk::obs::JsonValue* value = conn.Find(key);
        return value == nullptr ? uint64_t{0} : value->AsUint();
      };
      const auto seconds = [&conn](std::string_view key) {
        const bwtk::obs::JsonValue* value = conn.Find(key);
        return value == nullptr ? 0.0 : value->AsNumber();
      };
      std::printf("%6llu %10llu %10llu %12llu %12llu %8.1f %8.1f\n",
                  static_cast<unsigned long long>(field("id")),
                  static_cast<unsigned long long>(field("queries")),
                  static_cast<unsigned long long>(field("overloaded")),
                  static_cast<unsigned long long>(field("bytes_in")),
                  static_cast<unsigned long long>(field("bytes_out")),
                  seconds("age_seconds"), seconds("idle_seconds"));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  for (;;) {
    auto body = HttpGet(flags.host, flags.port, "/varz.json");
    if (!body.ok()) {
      std::fprintf(stderr, "serve_top: %s\n",
                   body.status().ToString().c_str());
      if (flags.once) return 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(flags.interval_ms));
      continue;
    }
    auto varz = bwtk::obs::ParseJson(*body);
    if (!varz.ok()) {
      std::fprintf(stderr, "serve_top: bad /varz.json: %s\n",
                   varz.status().ToString().c_str());
      if (flags.once) return 1;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(flags.interval_ms));
      continue;
    }
    if (!flags.once) {
      std::printf("\x1b[H\x1b[2J");  // home + clear, full redraw each poll
    }
    Render(*varz, flags.top);
    if (flags.once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(flags.interval_ms));
  }
}
