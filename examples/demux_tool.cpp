// demux_tool — assign sequencing reads to sample barcodes with the
// dictionary engine (PatternSetTrie + DictionarySearcher::SearchBest),
// the library's kaori-style demultiplexer. See docs/DICTIONARY.md for the
// walkthrough this tool anchors.
//
//   $ ./demux_tool                                # demo on simulated reads
//   $ ./demux_tool reads.fq acgtacgt,ttttcccc 1   # demux a FASTQ file
//
// File mode takes a FASTQ of reads, a comma-separated list of equal-length
// barcodes, and an optional mismatch budget (default 1), and prints one
// line per read: read name, outcome, barcode index, mismatches, offset.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bwtk.h"
#include "util/random.h"

namespace {

const char* OutcomeName(bwtk::DemuxAssignment::Outcome outcome) {
  switch (outcome) {
    case bwtk::DemuxAssignment::Outcome::kAssigned:
      return "assigned";
    case bwtk::DemuxAssignment::Outcome::kAmbiguous:
      return "ambiguous";
    case bwtk::DemuxAssignment::Outcome::kUnassigned:
      return "unassigned";
  }
  return "?";
}

// Demo: 8 well-separated 8 bp barcodes, 2000 simulated 48 bp reads each
// carrying one barcode at offset 8 with up to one sequencing error, plus
// 200 barcode-free reads. Demultiplexes at k = 1 and scores the calls
// against the known ground truth.
int Demo() {
  const std::vector<std::string> barcode_ascii = {
      "aacctgcg", "ttggacta", "catgcagt", "gtactcaa",
      "acgtggta", "tgcaatcg", "ctaagtgc", "gattcgac"};
  const auto barcodes = bwtk::PatternSetTrie::Build(barcode_ascii).value();

  bwtk::Rng rng(2017);
  std::vector<std::vector<bwtk::DnaCode>> reads;
  std::vector<int32_t> truth;  // barcode id, or -1 for barcode-free reads
  for (int i = 0; i < 2000; ++i) {
    const int32_t id = static_cast<int32_t>(rng.NextBounded(8));
    std::vector<bwtk::DnaCode> read;
    for (int j = 0; j < 8; ++j) {
      read.push_back(static_cast<bwtk::DnaCode>(rng.NextBounded(4)));
    }
    for (const char c : barcode_ascii[static_cast<size_t>(id)]) {
      read.push_back(bwtk::CharToCode(c));
    }
    if (rng.NextBounded(4) == 0) {  // one sequencing error in the barcode
      const size_t where = 8 + rng.NextBounded(8);
      read[where] = static_cast<bwtk::DnaCode>((read[where] + 1) & 3);
    }
    while (read.size() < 48) {
      read.push_back(static_cast<bwtk::DnaCode>(rng.NextBounded(4)));
    }
    reads.push_back(std::move(read));
    truth.push_back(id);
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<bwtk::DnaCode> read;
    for (int j = 0; j < 48; ++j) {
      read.push_back(static_cast<bwtk::DnaCode>(rng.NextBounded(4)));
    }
    reads.push_back(std::move(read));
    truth.push_back(-1);
  }

  std::printf("demultiplexing %zu simulated reads against %zu barcodes "
              "(k = 1)...\n\n", reads.size(), barcodes.num_patterns());
  const auto result =
      bwtk::DemuxReads(barcodes, reads, {.max_mismatches = 1});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::vector<size_t> per_barcode(barcodes.num_patterns(), 0);
  size_t ambiguous = 0;
  size_t unassigned = 0;
  size_t correct = 0;
  size_t wrong = 0;
  for (size_t i = 0; i < result->size(); ++i) {
    const bwtk::DemuxAssignment& a = (*result)[i];
    switch (a.outcome) {
      case bwtk::DemuxAssignment::Outcome::kAssigned:
        ++per_barcode[static_cast<size_t>(a.barcode)];
        (a.barcode == truth[i] ? correct : wrong) += 1;
        break;
      case bwtk::DemuxAssignment::Outcome::kAmbiguous:
        ++ambiguous;
        break;
      case bwtk::DemuxAssignment::Outcome::kUnassigned:
        ++unassigned;
        break;
    }
  }
  for (size_t b = 0; b < per_barcode.size(); ++b) {
    std::printf("  %s  %5zu reads\n", barcode_ascii[b].c_str(),
                per_barcode[b]);
  }
  std::printf("  ambiguous   %5zu\n  unassigned  %5zu\n", ambiguous,
              unassigned);
  std::printf("\n%zu of %zu barcode-carrying reads assigned to the true "
              "sample, %zu misassigned\n", correct, truth.size() - 200,
              wrong);
  // A handful of misassignments is inherent: a random flank can mimic a
  // barcode more closely than the errored true barcode. Gate on accuracy.
  return correct >= (truth.size() - 200) * 95 / 100 ? 0 : 1;
}

int DemuxFile(const char* fastq_path, const std::string& barcode_list,
              int32_t k) {
  std::vector<std::string> barcode_ascii;
  std::string current;
  for (const char c : barcode_list + ",") {
    if (c == ',') {
      if (!current.empty()) barcode_ascii.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  const auto barcodes = bwtk::PatternSetTrie::Build(barcode_ascii);
  if (!barcodes.ok()) {
    std::fprintf(stderr, "bad barcode list: %s\n",
                 barcodes.status().ToString().c_str());
    return 1;
  }
  const auto records = bwtk::ReadFastqFile(fastq_path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  std::vector<std::vector<bwtk::DnaCode>> reads;
  reads.reserve(records->size());
  for (const auto& record : *records) reads.push_back(record.sequence);
  const auto result =
      bwtk::DemuxReads(*barcodes, reads, {.max_mismatches = k});
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < result->size(); ++i) {
    const bwtk::DemuxAssignment& a = (*result)[i];
    std::printf("%s\t%s\t%d\t%d\t%zu\n", (*records)[i].name.c_str(),
                OutcomeName(a.outcome), a.barcode, a.mismatches, a.position);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 1) return Demo();
  if (argc == 3 || argc == 4) {
    const int32_t k = argc == 4 ? std::atoi(argv[3]) : 1;
    return DemuxFile(argv[1], argv[2], k);
  }
  std::fprintf(stderr,
               "usage: %s | %s reads.fq barcode1,barcode2,... [k]\n",
               argv[0], argv[0]);
  return 2;
}
