// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every binary regenerates one table or figure of the paper's Section V and
// prints it as an aligned text table with the same rows/series the paper
// reports. Sizes are scaled relative to the paper's genomes (see DESIGN.md);
// the BWTK_BENCH_SCALE environment variable multiplies all default sizes
// (e.g. BWTK_BENCH_SCALE=4 for a longer, more faithful run).

#ifndef BWTK_BENCH_BENCH_COMMON_H_
#define BWTK_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "search/match.h"
#include "simulate/read_simulator.h"

namespace bwtk::bench {

/// BWTK_BENCH_SCALE (default 1.0), clamped to [0.01, 1024].
double BenchScale();

/// Applies the scale to a base size with a floor.
size_t Scaled(size_t base_size);

/// Deterministic benchmark genome: GC 0.41, 30% repeats.
std::vector<DnaCode> MakeGenome(size_t length, uint64_t seed = 42);

/// Deterministic wgsim-like reads (forward strand so every engine sees the
/// identical query workload).
std::vector<std::vector<DnaCode>> MakeReads(const std::vector<DnaCode>& genome,
                                            size_t read_length,
                                            size_t read_count,
                                            uint64_t seed = 7);

/// Column-aligned table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds with an adaptive unit (s / ms / us).
std::string FormatSeconds(double seconds);

/// Formats a byte count as MB with two decimals.
std::string FormatMb(size_t bytes);

/// Formats a count with thousands separators.
std::string FormatCount(uint64_t value);

/// Prints the standard benchmark banner (name, genome size, scale).
void PrintBanner(const std::string& title, const std::string& setup);

/// One-line self-description of an index's rank configuration for banners
/// and logs: "kernel=avx2 prefix_q=12". Two runs that disagree on this line
/// are not comparable rank-for-rank.
std::string DescribeIndexConfig(const FmIndex& index);

}  // namespace bwtk::bench

#endif  // BWTK_BENCH_BENCH_COMMON_H_
