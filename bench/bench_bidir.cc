// Bidirectional search-scheme benchmark: the head-to-head grid behind the
// AutoPickEngine table. One BidirectionalSearch (search schemes over a
// BiFmIndex) versus Algorithm A and the baseline S-tree enumeration over
// the identical reads, across k in {0..5} x read length in {24, 36, 50,
// 100}. Emits BENCH_<name>.json (created_by "bench_bidir", validated by
// tools/validate_bench_json.py, gated by tools/bench_diff.py on the
// (genome, k, engine, threads) key — the per-run genome name carries the
// read length, e.g. "synth-1M/m100", so cells stay distinct).
//
// All three engines run single-threaded on indexes built from the same
// text with the same rank configuration (shared forward half), so the
// comparison isolates the traversal strategy: left-to-right enumeration
// with budget carried deep (stree), enumeration plus mismatch reuse
// (algorithm_a), or piece-ordered bidirectional descent whose early upper
// bounds kill mismatch-rich branches first (bidirectional). Before any
// timing is reported every read's hit vector is compared across all three
// engines — the bench refuses to report wrong answers.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bidir/bi_fm_index.h"
#include "bidir/bidir_search.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "search/algorithm_a.h"
#include "search/match.h"
#include "search/stree_search.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

struct CellResult {
  double wall_seconds = 0;  // per evaluation of the whole read set
  uint64_t total_hits = 0;
  SearchStats stats;  // one evaluation's worth
};

int Run(int argc, char** argv) {
  bool smoke = false;
  std::string name = "bidir";
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_bidir [--name NAME] [--out DIR] [--smoke]\n");
      return 2;
    }
  }

  const std::string genome_name = smoke ? "smoke-32K" : "synth-1M";
  const size_t genome_length = smoke ? (1u << 15) : Scaled(1u << 20);
  const std::vector<size_t> read_lengths =
      smoke ? std::vector<size_t>{24, 100}
            : std::vector<size_t>{24, 36, 50, 100};
  const std::vector<int32_t> k_values =
      smoke ? std::vector<int32_t>{0, 1, 3}
            : std::vector<int32_t>{0, 1, 2, 3, 4, 5};
  const size_t read_count = smoke ? 8 : 32;
  // Timing repetitions per cell; fixed constants so the work counters a
  // fresh run reports are reproducible against the committed baseline.
  const int iters = smoke ? 1 : 2;
  // Every engine gets the q-gram seed tables it knows how to use; the
  // BiFmIndex builds the paired forward/reverse tables from one option.
  const uint32_t prefix_table_q = 8;

  PrintBanner(
      "bench_bidir: search schemes vs enumeration head-to-head -> BENCH_" +
          name + ".json",
      genome_name + ", m in {24..100}, k in {0..5}, " +
          std::to_string(read_count) + " reads per cell");

  const auto genome = MakeGenome(genome_length);
  BiFmIndex::Options options;
  options.prefix_table_q = prefix_table_q;
  const auto bi = BiFmIndex::Build(genome, options).value();
  const BidirectionalSearch bidir(&bi);
  const AlgorithmA serial(&bi.forward());
  const STreeSearch stree(&bi.forward());
  AlgorithmAScratch scratch;

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_bidir")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .EndObject()
      .Key("workload")
      .BeginObject()
      .Key("genome")
      .Value(genome_name)
      .Key("genome_length")
      .Value(static_cast<uint64_t>(genome.size()))
      .Key("read_count")
      .Value(static_cast<uint64_t>(read_count))
      .Key("prefix_table_q")
      .Value(static_cast<uint64_t>(prefix_table_q))
      .EndObject();
  json.Key("runs").BeginArray();

  TablePrinter table(
      {"m", "k", "engine", "wall", "reads/s", "hits", "vs A"});

  for (const size_t m : read_lengths) {
    // One read set per length, reused across every k so a larger budget
    // strictly relaxes the same queries.
    const auto reads = MakeReads(genome, m, read_count);

    for (const int32_t k : k_values) {
      // One measured evaluation per engine for hits + stats, then the
      // timing loop; the three answers are checked read-for-read against
      // each other before anything is written.
      CellResult b;
      CellResult a;
      CellResult s;
      std::vector<std::vector<Occurrence>> bidir_hits(reads.size());
      for (size_t i = 0; i < reads.size(); ++i) {
        SearchStats one;  // Search resets the out-param; accumulate by hand
        bidir_hits[i] = bidir.Search(reads[i], k, &one);
        b.stats += one;
        b.total_hits += bidir_hits[i].size();
      }
      for (size_t i = 0; i < reads.size(); ++i) {
        SearchStats one;
        auto serial_hits = serial.Search(reads[i], k, &one, &scratch);
        NormalizeOccurrences(&serial_hits);
        a.stats += one;
        a.total_hits += serial_hits.size();
        if (serial_hits != bidir_hits[i]) {
          std::fprintf(stderr,
                       "m=%zu k=%d: bidirectional and algorithm_a disagree "
                       "on read %zu — refusing to report wrong answers\n",
                       m, k, i);
          return 1;
        }
      }
      for (size_t i = 0; i < reads.size(); ++i) {
        SearchStats one;
        auto stree_hits = stree.Search(reads[i], k, &one);
        NormalizeOccurrences(&stree_hits);
        s.stats += one;
        s.total_hits += stree_hits.size();
        if (stree_hits != bidir_hits[i]) {
          std::fprintf(stderr,
                       "m=%zu k=%d: bidirectional and stree disagree on "
                       "read %zu — refusing to report wrong answers\n",
                       m, k, i);
          return 1;
        }
      }

      Stopwatch bidir_watch;
      for (int it = 0; it < iters; ++it) {
        for (const auto& read : reads) bidir.Search(read, k, nullptr);
      }
      b.wall_seconds = bidir_watch.ElapsedSeconds() / iters;

      Stopwatch serial_watch;
      for (int it = 0; it < iters; ++it) {
        for (const auto& read : reads) {
          serial.Search(read, k, nullptr, &scratch);
        }
      }
      a.wall_seconds = serial_watch.ElapsedSeconds() / iters;

      Stopwatch stree_watch;
      for (int it = 0; it < iters; ++it) {
        for (const auto& read : reads) stree.Search(read, k, nullptr);
      }
      s.wall_seconds = stree_watch.ElapsedSeconds() / iters;

      const std::string run_genome = genome_name + "/m" + std::to_string(m);
      const double speedup =
          b.wall_seconds > 0 ? a.wall_seconds / b.wall_seconds : 0;
      const CellResult* cells[3] = {&b, &a, &s};
      const char* engines[3] = {"bidirectional", "algorithm_a", "stree"};
      for (int e = 0; e < 3; ++e) {
        const CellResult& r = *cells[e];
        const double rps =
            r.wall_seconds > 0 ? read_count / r.wall_seconds : 0;
        json.BeginObject()
            .Key("genome")
            .Value(run_genome)
            .Key("genome_length")
            .Value(static_cast<uint64_t>(genome.size()))
            .Key("read_length")
            .Value(static_cast<uint64_t>(m))
            .Key("read_count")
            .Value(static_cast<uint64_t>(read_count))
            .Key("k")
            .Value(k)
            .Key("engine")
            .Value(engines[e])
            .Key("threads")
            .Value(1)
            .Key("wall_seconds")
            .Value(r.wall_seconds)
            .Key("reads_per_second")
            .Value(rps)
            .Key("total_hits")
            .Value(r.total_hits);
        json.Key("stats");
        obs::AppendSearchStats(r.stats, &json);
        json.EndObject();
        table.AddRow({std::to_string(m), std::to_string(k), engines[e],
                      FormatSeconds(r.wall_seconds),
                      std::to_string(static_cast<uint64_t>(rps)),
                      FormatCount(r.total_hits),
                      e == 0 ? std::to_string(speedup).substr(0, 4) + "x"
                             : "-"});
      }
    }
  }
  json.EndArray().EndObject();
  table.Print();

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
