// Index construction costs (Sections II/III): BWT index vs suffix tree.
// The paper cites 12-17 bytes/char for suffix trees against 0.5-2 for the
// BWT ("the file size of chromosome 1 ... its suffix tree is of 26 Gb in
// size while its BWT needs only 390 Mb - 1 Gb"). This bench regenerates
// that comparison: per genome size we time SA-IS, the BWT derivation, the
// full FM-index build and the Ukkonen suffix tree, and report both
// footprints, plus the serialization round-trip.

#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "bwt/bwt.h"
#include "bwt/fm_index.h"
#include "suffix/suffix_array.h"
#include "suffix/suffix_tree.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

int Run() {
  PrintBanner("Index construction: BWT/FM-index vs suffix tree",
              "three genome sizes, 30% repeats");

  TablePrinter table({"genome (bp)", "SA-IS", "FM build", "FM B/base",
                      "suffix tree", "ST B/base", "ST:FM", "save+load"});
  for (const size_t base : {512u << 10, 2u << 20, 8u << 20}) {
    const size_t genome_size = Scaled(base);
    const auto genome = MakeGenome(genome_size);

    Stopwatch watch;
    const auto sa = BuildSuffixArrayDna(genome).value();
    const double sa_seconds = watch.ElapsedSeconds();

    watch.Restart();
    const auto index = FmIndex::Build(genome).value();
    const double fm_seconds = watch.ElapsedSeconds();

    watch.Restart();
    const auto tree = SuffixTree::Build(genome).value();
    const double st_seconds = watch.ElapsedSeconds();

    watch.Restart();
    std::stringstream buffer;
    (void)index.Save(buffer);
    const auto reloaded = FmIndex::Load(buffer).value();
    const double io_seconds = watch.ElapsedSeconds();

    char fm_bpb[16];
    char st_bpb[16];
    char ratio[16];
    std::snprintf(fm_bpb, sizeof(fm_bpb), "%.2f",
                  static_cast<double>(index.MemoryUsage()) / genome_size);
    std::snprintf(st_bpb, sizeof(st_bpb), "%.1f",
                  static_cast<double>(tree.MemoryUsage()) / genome_size);
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(tree.MemoryUsage()) /
                      index.MemoryUsage());
    table.AddRow({FormatCount(genome_size), FormatSeconds(sa_seconds),
                  FormatSeconds(fm_seconds), fm_bpb,
                  FormatSeconds(st_seconds), st_bpb, ratio,
                  FormatSeconds(io_seconds)});
    if (reloaded.text_size() != genome_size) std::printf("reload mismatch!\n");
  }
  table.Print();
  std::printf("(FM build includes reversal + SA-IS + BWT + rankall + SA "
              "samples)\n");
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
