// Fig. 11(b): average match time per read while the read length varies
// (100-300 bp) with k fixed at 5, for the paper's four methods.
//
// Expected shape (paper): "only the BWT-based and the Cole's are sensitive
// to the length of reads" — the indexes must walk deeper trees for longer
// patterns — while Amir's (text-scan dominated) and Algorithm A stay flat.

#include <cstdio>

#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/stree_search.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 2u << 20;
constexpr size_t kReadCount = 20;
constexpr int32_t kMismatches = 5;  // "For this test, k is set to 5."

int Run() {
  const size_t genome_size = Scaled(kBaseGenomeSize);
  PrintBanner("Fig. 11(b): average match time vs read length (k = 5)",
              "genome " + FormatCount(genome_size) + " bp, " +
                  std::to_string(kReadCount) + " reads per length");

  const auto genome = MakeGenome(genome_size);
  const auto index = FmIndex::Build(genome).value();
  const STreeSearch bwt_baseline(&index);
  const AmirSearch amir(&genome);
  const auto cole = ColeSearch::Build(genome).value();
  const AlgorithmA a_paper(&index, {.use_tau = false});
  const AlgorithmA a_tau(&index);

  TablePrinter table({"read bp", "BWT [34]", "Amir's", "Cole's", "A(.)",
                      "A(.)+tau"});
  size_t check = 0;
  for (const size_t read_length : {100u, 150u, 200u, 250u, 300u}) {
    const auto reads =
        MakeReads(genome, read_length, kReadCount, 7 + read_length);

    Stopwatch watch;
    for (const auto& read : reads) {
      check += bwt_baseline.Search(read, kMismatches).size();
    }
    const double bwt_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += amir.Search(read, kMismatches).size();
    }
    const double amir_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += cole.Search(read, kMismatches).size();
    }
    const double cole_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += a_paper.Search(read, kMismatches).size();
    }
    const double a_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += a_tau.Search(read, kMismatches).size();
    }
    const double a_tau_time = watch.ElapsedSeconds() / kReadCount;

    table.AddRow({std::to_string(read_length), FormatSeconds(bwt_time),
                  FormatSeconds(amir_time), FormatSeconds(cole_time),
                  FormatSeconds(a_time), FormatSeconds(a_tau_time)});
  }
  table.Print();
  std::printf("(times per read over %zu reads per length; checksum %zu)\n",
              kReadCount, check);
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
