// Ablation: the rankall checkpoint rate (Fig. 2's space/time dial — the
// paper stores "4 rankall values ... for every 4 elements"; sparser
// checkpoints shrink the index and lengthen every search() step).

#include <cstdio>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 2u << 20;
constexpr size_t kReadLength = 100;
constexpr size_t kReadCount = 10;
constexpr int32_t kMismatches = 3;

int Run() {
  const size_t genome_size = Scaled(kBaseGenomeSize);
  PrintBanner("Ablation: rankall checkpoint rate",
              "genome " + FormatCount(genome_size) + " bp, " +
                  std::to_string(kReadCount) + " reads of 100 bp, k = 3");

  const auto genome = MakeGenome(genome_size);
  const auto reads = MakeReads(genome, kReadLength, kReadCount);

  TablePrinter table({"checkpoint rate", "index size", "bytes/base",
                      "build", "search time/read"});
  for (const uint32_t rate : {32u, 64u, 128u, 256u, 512u}) {
    FmIndex::Options options;
    options.checkpoint_rate = rate;
    Stopwatch build_watch;
    const auto index = FmIndex::Build(genome, options).value();
    const double build_seconds = build_watch.ElapsedSeconds();
    const AlgorithmA searcher(&index);
    (void)searcher.Search(reads[0], kMismatches);  // warm
    Stopwatch watch;
    for (const auto& read : reads) {
      (void)searcher.Search(read, kMismatches);
    }
    const double per_read = watch.ElapsedSeconds() / kReadCount;
    char bpb[16];
    std::snprintf(bpb, sizeof(bpb), "%.3f",
                  static_cast<double>(index.MemoryUsage()) / genome_size);
    table.AddRow({std::to_string(rate), FormatMb(index.MemoryUsage()), bpb,
                  FormatSeconds(build_seconds), FormatSeconds(per_read)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
