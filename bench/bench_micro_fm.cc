// Micro-benchmarks (google-benchmark) of the FM-index primitives every
// search is built from: rank, the fused rank-all, one backward-search step,
// exact pattern matching, and occurrence location.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "bwt/prefix_table.h"
#include "util/random.h"

namespace bwtk::bench {
namespace {

const FmIndex& SharedIndex() {
  static const FmIndex* index = [] {
    const auto genome = MakeGenome(Scaled(2u << 20));
    return new FmIndex(FmIndex::Build(genome).value());
  }();
  return *index;
}

// Same genome with a q = 12 prefix interval table attached, for the
// table-accelerated counterparts of the descent benchmarks.
constexpr uint32_t kBenchPrefixQ = 12;

const FmIndex& SharedTableIndex() {
  static const FmIndex* index = [] {
    const auto genome = MakeGenome(Scaled(2u << 20));
    return new FmIndex(
        FmIndex::Build(genome, {.prefix_table_q = kBenchPrefixQ}).value());
  }();
  return *index;
}

void BM_Rank(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  Rng rng(1);
  uint64_t sink = 0;
  for (auto _ : state) {
    const size_t pos = rng.NextBounded(index.rows());
    sink += index.occ().Rank(static_cast<DnaCode>(pos & 3), pos);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_Rank);

void BM_RankAll(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  Rng rng(2);
  uint32_t out[kDnaAlphabetSize];
  for (auto _ : state) {
    index.occ().RankAll(rng.NextBounded(index.rows()), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_RankAll);

void BM_ExtendStep(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  Rng rng(3);
  FmIndex::Range range = index.WholeRange();
  for (auto _ : state) {
    const FmIndex::Range next =
        index.Extend(range, static_cast<DnaCode>(rng.NextBounded(4)));
    range = next.empty() || next.count() < 4 ? index.WholeRange() : next;
    benchmark::DoNotOptimize(range);
  }
}
BENCHMARK(BM_ExtendStep);

void BM_ExtendAll(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  Rng rng(4);
  FmIndex::Range range = index.WholeRange();
  FmIndex::Range out[kDnaAlphabetSize];
  for (auto _ : state) {
    index.ExtendAll(range, out);
    const FmIndex::Range next = out[rng.NextBounded(4)];
    range = next.empty() || next.count() < 4 ? index.WholeRange() : next;
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ExtendAll);

void BM_PrefixTableLookup(benchmark::State& state) {
  const FmIndex& index = SharedTableIndex();
  const PrefixIntervalTable& table = *index.prefix_table();
  Rng rng(7);
  SaIndex lo;
  SaIndex hi;
  uint64_t sink = 0;
  for (auto _ : state) {
    const uint64_t key =
        rng.NextBounded(PrefixIntervalTable::KeyCount(table.q()));
    sink += table.Lookup(key, &lo, &hi) ? static_cast<uint64_t>(hi - lo) : 0;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_PrefixTableLookup);

void BM_CountExactPattern(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  Rng rng(5);
  const auto genome = MakeGenome(Scaled(2u << 20));  // same seed as index
  const size_t m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const size_t pos = rng.NextBounded(genome.size() - m);
    const std::vector<DnaCode> pattern(genome.begin() + pos,
                                       genome.begin() + pos + m);
    benchmark::DoNotOptimize(index.CountOccurrences(pattern));
  }
}
BENCHMARK(BM_CountExactPattern)->Arg(20)->Arg(50)->Arg(100);

// Same workload against the table-backed index: the first kBenchPrefixQ
// backward-search steps collapse into one lookup. The delta against
// BM_CountExactPattern is the per-descent saving of the table.
void BM_CountExactPatternWithTable(benchmark::State& state) {
  const FmIndex& index = SharedTableIndex();
  Rng rng(5);  // same seed as BM_CountExactPattern: identical patterns
  const auto genome = MakeGenome(Scaled(2u << 20));
  const size_t m = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    const size_t pos = rng.NextBounded(genome.size() - m);
    const std::vector<DnaCode> pattern(genome.begin() + pos,
                                       genome.begin() + pos + m);
    benchmark::DoNotOptimize(index.CountOccurrences(pattern));
  }
}
BENCHMARK(BM_CountExactPatternWithTable)->Arg(20)->Arg(50)->Arg(100);

void BM_Locate(benchmark::State& state) {
  const FmIndex& index = SharedIndex();
  const auto genome = MakeGenome(Scaled(2u << 20));
  Rng rng(6);
  constexpr size_t kPatternLength = 30;
  for (auto _ : state) {
    const size_t pos = rng.NextBounded(genome.size() - kPatternLength);
    const std::vector<DnaCode> pattern(
        genome.begin() + pos, genome.begin() + pos + kPatternLength);
    const auto range = index.MatchForward(pattern);
    benchmark::DoNotOptimize(index.Locate(range, kPatternLength));
  }
}
BENCHMARK(BM_Locate);

}  // namespace
}  // namespace bwtk::bench

BENCHMARK_MAIN();
