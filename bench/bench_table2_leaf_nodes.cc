// Table 2: the number n' of M-tree leaf nodes produced by Algorithm A for
// growing (k, read-length) pairs — the quantity its O(kn' + n + m log m)
// bound depends on. The paper reports the pairs 5/50, 10/100, 20/150 and
// 30/200 on the Rat genome and observes n' in the 0.1M-10M range, far below
// n = 2.9 Gbp.
//
// Algorithm A runs here in the paper's configuration (no τ cut-off) so the
// M-tree is exactly the structure Definition 4 describes.

#include <cstdio>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 1u << 20;
constexpr size_t kReadCount = 3;

struct Config {
  int32_t k;
  size_t read_length;
};

int Run() {
  const size_t genome_size = Scaled(kBaseGenomeSize);
  PrintBanner("Table 2: number of M-tree leaf nodes n'",
              "genome " + FormatCount(genome_size) + " bp (the paper's n), " +
                  std::to_string(kReadCount) + " reads per configuration");

  const auto genome = MakeGenome(genome_size);
  const auto index = FmIndex::Build(genome).value();
  const AlgorithmA algorithm_a(&index, {.use_tau = false});

  // The paper's k / read-length ladder.
  const Config configs[] = {{5, 50}, {10, 100}, {20, 150}, {30, 200}};

  TablePrinter table({"k/length-of-read", "n' (M-tree leaves)", "n'/n",
                      "M-tree nodes", "time/read"});
  for (const Config& config : configs) {
    const auto reads =
        MakeReads(genome, config.read_length, kReadCount, 11 + config.k);
    uint64_t leaves = 0;
    uint64_t nodes = 0;
    Stopwatch watch;
    for (const auto& read : reads) {
      SearchStats stats;
      (void)algorithm_a.Search(read, config.k, &stats);
      leaves += stats.mtree_leaves;
      nodes += stats.mtree_nodes;
    }
    const double per_read = watch.ElapsedSeconds() / kReadCount;
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f",
                  static_cast<double>(leaves) / genome_size);
    table.AddRow({std::to_string(config.k) + "/" +
                      std::to_string(config.read_length),
                  FormatCount(leaves), ratio, FormatCount(nodes),
                  FormatSeconds(per_read)});
  }
  table.Print();
  std::printf("(n' summed over %zu reads; the paper's shape: n' grows with "
              "both k and read length and stays well below n)\n",
              kReadCount);
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
