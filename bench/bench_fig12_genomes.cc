// Genome sweep (the evaluation section's remaining figure; see DESIGN.md):
// average match time per read across the five Table 1 genomes, with reads
// of 100 bp and k = 5, for the paper's four methods.
//
// Expected shape: every method's cost grows with genome size; the online
// methods (Amir's) grow linearly in n, the index-based tree searches grow
// sublinearly (deeper but narrower exploration).

#include <cstdio>

#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/stree_search.h"
#include "simulate/genome_generator.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr double kBasePresetScale = 1.0 / 1024;
constexpr size_t kReadLength = 100;
constexpr size_t kReadCount = 10;
constexpr int32_t kMismatches = 5;

int Run() {
  const double scale = kBasePresetScale * BenchScale();
  PrintBanner("Genome sweep: average match time per read (100 bp, k = 5)",
              std::to_string(kReadCount) + " reads per genome");

  TablePrinter table({"Genome", "size (bp)", "BWT [34]", "Amir's", "Cole's",
                      "A(.)+tau"});
  size_t check = 0;
  for (const GenomePreset& preset : Table1Presets(scale)) {
    GenomeOptions options;
    options.length = preset.scaled_size_bp;
    options.repeat_fraction = 0.3;
    options.seed = 42 + preset.scaled_size_bp % 97;
    const auto genome = GenerateGenome(options).value();
    const auto reads = MakeReads(genome, kReadLength, kReadCount);

    const auto index = FmIndex::Build(genome).value();
    const STreeSearch bwt_baseline(&index);
    const AmirSearch amir(&genome);
    const auto cole = ColeSearch::Build(genome).value();
    const AlgorithmA algorithm_a(&index);

    Stopwatch watch;
    for (const auto& read : reads) {
      check += bwt_baseline.Search(read, kMismatches).size();
    }
    const double bwt_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += amir.Search(read, kMismatches).size();
    }
    const double amir_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += cole.Search(read, kMismatches).size();
    }
    const double cole_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) {
      check += algorithm_a.Search(read, kMismatches).size();
    }
    const double a_time = watch.ElapsedSeconds() / kReadCount;

    table.AddRow({preset.name, FormatCount(preset.scaled_size_bp),
                  FormatSeconds(bwt_time), FormatSeconds(amir_time),
                  FormatSeconds(cole_time), FormatSeconds(a_time)});
  }
  table.Print();
  std::printf("(checksum %zu)\n", check);
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
