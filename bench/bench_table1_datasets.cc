// Table 1: characteristics of the evaluation genomes. The paper lists five
// real genomes (Rat 2.9 Gbp ... C. merolae 16.7 Mbp); we print the scaled
// synthetic stand-ins actually used by the other benchmarks, alongside the
// paper's sizes, plus their measured composition and index-build costs.

#include <cstdio>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "simulate/genome_generator.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

// 1/1024 of the paper's sizes by default; BWTK_BENCH_SCALE multiplies this.
constexpr double kBasePresetScale = 1.0 / 1024;

int Run() {
  const double scale = kBasePresetScale * BenchScale();
  PrintBanner("Table 1: characteristics of genomes",
              "synthetic stand-ins at 1/" +
                  std::to_string(static_cast<int>(1.0 / scale)) +
                  " of the paper's sizes");

  TablePrinter table({"Genome", "Paper size (bp)", "Scaled size (bp)", "GC%",
                      "index build", "index size"});
  for (const GenomePreset& preset : Table1Presets(scale)) {
    GenomeOptions options;
    options.length = preset.scaled_size_bp;
    options.repeat_fraction = 0.3;
    options.seed = 42 + preset.scaled_size_bp % 97;
    const auto genome = GenerateGenome(options).value();
    size_t gc = 0;
    for (const DnaCode c : genome) gc += (c == 1 || c == 2);
    Stopwatch watch;
    const auto index = FmIndex::Build(genome).value();
    const double build_seconds = watch.ElapsedSeconds();
    char gc_text[16];
    std::snprintf(gc_text, sizeof(gc_text), "%.1f",
                  100.0 * gc / genome.size());
    table.AddRow({preset.name, FormatCount(preset.paper_size_bp),
                  FormatCount(preset.scaled_size_bp), gc_text,
                  FormatSeconds(build_seconds),
                  FormatMb(index.MemoryUsage())});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
