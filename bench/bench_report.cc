// bench_report — the paper-shaped experiment grid as one machine-readable
// JSON report (docs/OBSERVABILITY.md documents the schema; CI validates it
// with tools/validate_bench_json.py).
//
// Runs {genomes} x {k values} x {engines: BWT-baseline serial, Algorithm A
// serial, BatchSearcher} over simulated wgsim-like reads, and for every cell
// records wall time, throughput, the engine's SearchStats, and the metrics
// registry delta (counters, per-phase nanosecond timers, histograms)
// captured around the cell. This is the trend-tracking substrate every perf
// PR reports against: run it before and after, diff the BENCH_*.json.
//
// The rank phase is *estimated*, not timed: per-call timing of an ~50 ns
// rank would dwarf the operation (see docs/OBSERVABILITY.md, "Overhead").
// Instead the driver calibrates the average Rank/RankAll cost per genome
// with a measurement loop and multiplies by the counted calls; the entry is
// marked "estimated": true in the JSON.
//
//   bench_report [--name NAME] [--out DIR] [--smoke] [--threads N]
//                [--prefix-q Q] [--shards S]
//
// --smoke shrinks sizes for CI while keeping the full grid shape (2 genomes
// x 3 k values x the engine list). BWTK_BENCH_SCALE applies as everywhere
// else. --prefix-q attaches a q-gram prefix interval table to every index
// (0 = none, the default — keeps old and new reports cell-for-cell
// comparable); each genome entry records its "rank_kernel" and
// "prefix_table_q" so a report is self-describing about the index
// configuration it measured.
//
// The serial kerror engine (Levenshtein distance) runs only for k <= 2: its
// backtracking state space grows steeply with the budget and would dominate
// the grid's wall time at larger k.
//
// The wildcard engine runs the same reads with two positions per read
// replaced by the wildcard code (deterministic positions, len/3 and
// 2*len/3), so its cells measure genuine wildcard-branch fan-out rather
// than the degenerate no-wildcard case. Its total_hits are therefore not
// comparable to the other engines' (the workload differs by construction);
// within the wildcard row the counters are as deterministic as any other.
//
// --shards S (0 = off) additionally builds an S-shard ShardedIndex per
// genome — timing the parallel shard build against the monolithic one in
// the genome entry ("sharded_index_build_seconds", "num_shards") — and adds
// a "sharded" engine cell per k running the same batch workload through
// ShardedBatchSearcher; those runs carry a "num_shards" field.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "bwt/prefix_table.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "search/algorithm_a.h"
#include "search/batch_searcher.h"
#include "search/kerror_search.h"
#include "search/stree_search.h"
#include "search/wildcard_search.h"
#include "shard/sharded_index.h"
#include "shard/sharded_searcher.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

struct GenomeSpec {
  std::string name;
  size_t length;
  uint64_t seed;
};

struct Calibration {
  double rank_ns = 0;     // average OccTable::Rank call
  double rankall_ns = 0;  // average OccTable::RankAll call
};

struct CellResult {
  std::string engine;
  int threads = 1;
  size_t num_shards = 0;  // > 0 only for the "sharded" engine
  double wall_seconds = 0;
  size_t total_hits = 0;
  SearchStats stats;
  obs::MetricsBlock delta;
};

/// Largest k the serial kerror cells run at (see the file comment).
constexpr int32_t kMaxKErrorBudget = 2;

// Average per-call cost of the two rank primitives, measured against the
// real index so checkpoint-gap scanning is represented.
Calibration CalibrateRank(const FmIndex& index) {
  const size_t rows = index.rows();
  const size_t iters = 200000;
  Calibration cal;
  uint64_t sink = 0;

  Stopwatch watch;
  size_t pos = 1;
  for (size_t i = 0; i < iters; ++i) {
    sink += index.occ().Rank(static_cast<DnaCode>(i & 3), pos);
    pos = (pos * 2862933555777941757ULL + 3037000493ULL) % rows;
  }
  cal.rank_ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);

  uint32_t ranks[kDnaAlphabetSize];
  watch.Restart();
  pos = 1;
  for (size_t i = 0; i < iters; ++i) {
    index.occ().RankAll(pos, ranks);
    sink += ranks[i & 3];
    pos = (pos * 2862933555777941757ULL + 3037000493ULL) % rows;
  }
  cal.rankall_ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);

  if (sink == 0x5eed) std::printf(" ");  // defeat dead-code elimination
  return cal;
}

CellResult RunSerial(const FmIndex& index, bool algorithm_a,
                     const std::vector<std::vector<DnaCode>>& reads,
                     int32_t k) {
  CellResult cell;
  cell.engine = algorithm_a ? "algorithm_a" : "stree";
  const STreeSearch stree(&index);
  const AlgorithmA alg(&index);
  AlgorithmAScratch scratch;
  const obs::MetricsBlock before = obs::MetricsRegistry::Instance().Snapshot();
  Stopwatch watch;
  for (const auto& read : reads) {
    SearchStats stats;
    const auto hits = algorithm_a ? alg.Search(read, k, &stats, &scratch)
                                  : stree.Search(read, k, &stats);
    cell.total_hits += hits.size();
    cell.stats += stats;
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  return cell;
}

CellResult RunKError(const FmIndex& index,
                     const std::vector<std::vector<DnaCode>>& reads,
                     int32_t k) {
  CellResult cell;
  cell.engine = "kerror";
  const KErrorSearch kerror(&index);
  const obs::MetricsBlock before = obs::MetricsRegistry::Instance().Snapshot();
  Stopwatch watch;
  for (const auto& read : reads) {
    SearchStats stats;
    cell.total_hits += kerror.Search(read, k, &stats).size();
    cell.stats += stats;
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  return cell;
}

// Wildcard cells run a derived workload: the same reads with two positions
// punched to the wildcard code (see the file comment).
CellResult RunWildcard(const FmIndex& index,
                       const std::vector<std::vector<DnaCode>>& reads,
                       int32_t k) {
  CellResult cell;
  cell.engine = "wildcard";
  const WildcardSearch wildcard(&index);
  std::vector<std::vector<DnaCode>> punched = reads;
  for (auto& read : punched) {
    if (read.size() < 3) continue;
    read[read.size() / 3] = kWildcardCode;
    read[2 * read.size() / 3] = kWildcardCode;
  }
  const obs::MetricsBlock before = obs::MetricsRegistry::Instance().Snapshot();
  Stopwatch watch;
  for (const auto& read : punched) {
    SearchStats stats;
    cell.total_hits += wildcard.Search(read, k, &stats).size();
    cell.stats += stats;
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  return cell;
}

CellResult RunSharded(const ShardedIndex& index,
                      const std::vector<std::vector<DnaCode>>& reads,
                      int32_t k, int threads) {
  CellResult cell;
  cell.engine = "sharded";
  cell.threads = threads;
  cell.num_shards = index.num_shards();
  std::vector<BatchQuery> queries;
  queries.reserve(reads.size());
  for (const auto& read : reads) queries.push_back({read, k});
  const obs::MetricsBlock before = obs::MetricsRegistry::Instance().Snapshot();
  Stopwatch watch;
  {
    // Like RunBatch: pool construction/teardown inside the timed region.
    ShardedBatchSearcher sharded(&index, {.num_threads = threads});
    auto result = sharded.Search(queries);
    if (!result.ok()) {
      std::fprintf(stderr, "sharded cell failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    cell.stats = result->stats;
    for (const auto& hits : result->occurrences) {
      cell.total_hits += hits.size();
    }
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  return cell;
}

CellResult RunBatch(const FmIndex& index,
                    const std::vector<std::vector<DnaCode>>& reads, int32_t k,
                    int threads) {
  CellResult cell;
  cell.engine = "batch";
  cell.threads = threads;
  std::vector<BatchQuery> queries;
  queries.reserve(reads.size());
  for (const auto& read : reads) queries.push_back({read, k});
  const obs::MetricsBlock before = obs::MetricsRegistry::Instance().Snapshot();
  Stopwatch watch;
  {
    // Pool construction/teardown inside the timed+delta'd region: the cell
    // reports what a cold batch costs, queue-wait tail included.
    BatchSearcher batch(&index, {.num_threads = threads});
    BatchResult result = batch.Search(queries);
    cell.stats = result.stats;
    for (const auto& hits : result.occurrences) cell.total_hits += hits.size();
  }
  cell.wall_seconds = watch.ElapsedSeconds();
  cell.delta =
      obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
  return cell;
}

void AppendPhasesWithRankEstimate(const obs::MetricsBlock& delta,
                                  const Calibration& cal,
                                  obs::JsonWriter* w) {
  w->BeginObject();
  const uint64_t rank_calls = delta.counters[obs::kCounterRankCalls];
  const uint64_t rankall_calls = delta.counters[obs::kCounterRankAllCalls];
  const double rank_nanos = static_cast<double>(rank_calls) * cal.rank_ns +
                            static_cast<double>(rankall_calls) * cal.rankall_ns;
  w->Key("rank")
      .BeginObject()
      .Key("nanos")
      .Value(static_cast<uint64_t>(rank_nanos))
      .Key("calls")
      .Value(rank_calls + rankall_calls)
      .Key("estimated")
      .Value(true)
      .EndObject();
  for (uint32_t i = 0; i < obs::kNumPhases; ++i) {
    w->Key(obs::PhaseName(static_cast<obs::PhaseId>(i)))
        .BeginObject()
        .Key("nanos")
        .Value(delta.phase_nanos[i])
        .Key("calls")
        .Value(delta.phase_calls[i])
        .EndObject();
  }
  w->EndObject();
}

int Run(int argc, char** argv) {
  std::string name = "report";
  std::string out_dir = ".";
  bool smoke = false;
  int threads = 4;
  int prefix_q = 0;
  int shards = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--prefix-q") == 0 && i + 1 < argc) {
      prefix_q = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--name NAME] [--out DIR] [--smoke] "
                   "[--threads N] [--prefix-q Q] [--shards S]\n");
      return 2;
    }
  }
  if (shards < 0) shards = 0;
  if (threads <= 0) threads = 4;
  if (prefix_q < 0 ||
      prefix_q > static_cast<int>(PrefixIntervalTable::kMaxQ)) {
    std::fprintf(stderr, "--prefix-q must be in [0, %u]\n",
                 PrefixIntervalTable::kMaxQ);
    return 2;
  }

  const std::vector<GenomeSpec> genomes =
      smoke ? std::vector<GenomeSpec>{{"smoke-16K", 1u << 14, 42},
                                      {"smoke-32K", 1u << 15, 1042}}
            : std::vector<GenomeSpec>{{"synth-512K", 1u << 19, 42},
                                      {"synth-2M", 1u << 21, 1042}};
  const std::vector<int32_t> k_values =
      smoke ? std::vector<int32_t>{1, 2, 3} : std::vector<int32_t>{1, 3, 5};
  const size_t read_length = smoke ? 50 : 100;
  const size_t read_count = smoke ? 6 : 20;

  std::vector<std::string> engines = {"stree", "algorithm_a", "kerror",
                                      "wildcard", "batch"};
  if (shards > 0) engines.push_back("sharded");
  // Overlap covering every read window the grid issues, kerror included.
  const size_t shard_overlap =
      read_length + static_cast<size_t>(kMaxKErrorBudget);

  PrintBanner("bench_report: observability grid -> BENCH_" + name + ".json",
              std::to_string(genomes.size()) + " genomes x " +
                  std::to_string(k_values.size()) + " k values x " +
                  std::to_string(engines.size()) + " engines, reads " +
                  std::to_string(read_length) + " bp x " +
                  std::to_string(read_count));

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_report")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .EndObject();

  json.Key("grid").BeginObject().Key("genomes").BeginArray();
  for (const auto& g : genomes) json.Value(g.name);
  json.EndArray().Key("k_values").BeginArray();
  for (const int32_t k : k_values) json.Value(k);
  json.EndArray().Key("engines").BeginArray();
  for (const std::string& e : engines) json.Value(e);
  json.EndArray()
      .Key("read_length")
      .Value(static_cast<uint64_t>(read_length))
      .Key("read_count")
      .Value(static_cast<uint64_t>(read_count))
      .Key("batch_threads")
      .Value(threads)
      .Key("prefix_table_q")
      .Value(static_cast<uint64_t>(prefix_q))
      .Key("num_shards")
      .Value(static_cast<uint64_t>(shards))
      .EndObject();

  TablePrinter table({"genome", "k", "engine", "wall", "reads/s", "hits",
                      "extend calls", "n'"});

  json.Key("genomes").BeginArray();
  struct BuiltGenome {
    GenomeSpec spec;
    size_t length;
    std::vector<std::vector<DnaCode>> reads;
    FmIndex index;
    Calibration cal;
    std::unique_ptr<ShardedIndex> sharded;  // only with --shards > 0
  };
  std::vector<BuiltGenome> built;
  for (const auto& spec : genomes) {
    const size_t length = Scaled(spec.length);
    auto genome = MakeGenome(length, spec.seed);
    const obs::MetricsBlock before =
        obs::MetricsRegistry::Instance().Snapshot();
    Stopwatch watch;
    auto index =
        FmIndex::Build(genome,
                       {.prefix_table_q = static_cast<uint32_t>(prefix_q)})
            .value();
    const double build_seconds = watch.ElapsedSeconds();
    const obs::MetricsBlock delta =
        obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
    std::printf("# %s: %s\n", spec.name.c_str(),
                DescribeIndexConfig(index).c_str());
    std::unique_ptr<ShardedIndex> sharded;
    double sharded_build_seconds = 0;
    if (shards > 0) {
      ShardedIndexOptions shard_options;
      shard_options.num_shards = static_cast<size_t>(shards);
      shard_options.overlap = shard_overlap;
      shard_options.index_options.prefix_table_q =
          static_cast<uint32_t>(prefix_q);
      Stopwatch shard_watch;
      auto result = ShardedIndex::Build(genome, shard_options);
      if (!result.ok()) {
        std::fprintf(stderr, "sharded build failed for %s: %s\n",
                     spec.name.c_str(), result.status().ToString().c_str());
        return 1;
      }
      sharded_build_seconds = shard_watch.ElapsedSeconds();
      sharded = std::make_unique<ShardedIndex>(std::move(result).value());
    }
    const Calibration cal = CalibrateRank(index);
    json.BeginObject()
        .Key("name")
        .Value(spec.name)
        .Key("length")
        .Value(static_cast<uint64_t>(length))
        .Key("seed")
        .Value(spec.seed)
        .Key("index_build_seconds")
        .Value(build_seconds)
        .Key("index_build_phase_nanos")
        .Value(delta.phase_nanos[obs::kPhaseIndexBuild])
        .Key("index_bytes")
        .Value(static_cast<uint64_t>(index.MemoryUsage()))
        .Key("rank_ns")
        .Value(cal.rank_ns)
        .Key("rankall_ns")
        .Value(cal.rankall_ns)
        .Key("rank_kernel")
        .Value(index.rank_kernel_name())
        .Key("prefix_table_q")
        .Value(index.prefix_table_q());
    if (sharded != nullptr) {
      json.Key("sharded_index_build_seconds")
          .Value(sharded_build_seconds)
          .Key("num_shards")
          .Value(static_cast<uint64_t>(sharded->num_shards()))
          .Key("shard_overlap")
          .Value(static_cast<uint64_t>(sharded->overlap()))
          .Key("sharded_index_bytes")
          .Value(static_cast<uint64_t>(sharded->MemoryUsage()));
    }
    json.EndObject();
    built.push_back({spec, length,
                     MakeReads(genome, read_length, read_count, spec.seed + 7),
                     std::move(index), cal, std::move(sharded)});
  }
  json.EndArray();

  json.Key("runs").BeginArray();
  for (const auto& g : built) {
    // Warm each engine once so cold-start noise lands outside the cells.
    (void)STreeSearch(&g.index).Search(g.reads[0], 1);
    (void)AlgorithmA(&g.index).Search(g.reads[0], 1);
    for (const int32_t k : k_values) {
      std::vector<CellResult> cells;
      cells.push_back(RunSerial(g.index, /*algorithm_a=*/false, g.reads, k));
      cells.push_back(RunSerial(g.index, /*algorithm_a=*/true, g.reads, k));
      if (k <= kMaxKErrorBudget) {
        cells.push_back(RunKError(g.index, g.reads, k));
      }
      cells.push_back(RunWildcard(g.index, g.reads, k));
      cells.push_back(RunBatch(g.index, g.reads, k, threads));
      if (g.sharded != nullptr) {
        cells.push_back(RunSharded(*g.sharded, g.reads, k, threads));
      }
      for (const CellResult& cell : cells) {
        const double reads_per_second =
            cell.wall_seconds > 0
                ? static_cast<double>(read_count) / cell.wall_seconds
                : 0;
        json.BeginObject()
            .Key("genome")
            .Value(g.spec.name)
            .Key("genome_length")
            .Value(static_cast<uint64_t>(g.length))
            .Key("read_length")
            .Value(static_cast<uint64_t>(read_length))
            .Key("read_count")
            .Value(static_cast<uint64_t>(read_count))
            .Key("k")
            .Value(k)
            .Key("engine")
            .Value(cell.engine)
            .Key("threads")
            .Value(cell.threads);
        if (cell.num_shards > 0) {
          json.Key("num_shards").Value(static_cast<uint64_t>(cell.num_shards));
        }
        json.Key("wall_seconds")
            .Value(cell.wall_seconds)
            .Key("reads_per_second")
            .Value(reads_per_second)
            .Key("total_hits")
            .Value(static_cast<uint64_t>(cell.total_hits));
        // Quantiles estimated from the log2 per-query latency histogram:
        // order-of-magnitude faithful (bucket-bounded error), cheap, and
        // derived from data the report already carries.
        const obs::Histogram& latency = cell.delta.hists[obs::kHistQueryNanos];
        json.Key("latency_estimate")
            .BeginObject()
            .Key("p50_nanos")
            .Value(obs::EstimateQuantile(latency, 0.50))
            .Key("p95_nanos")
            .Value(obs::EstimateQuantile(latency, 0.95))
            .Key("p99_nanos")
            .Value(obs::EstimateQuantile(latency, 0.99))
            .Key("samples")
            .Value(latency.count)
            .Key("estimated")
            .Value(true)
            .EndObject();
        json.Key("stats");
        obs::AppendSearchStats(cell.stats, &json);
        json.Key("phases");
        AppendPhasesWithRankEstimate(cell.delta, g.cal, &json);
        json.Key("counters");
        obs::AppendCounters(cell.delta, &json);
        json.Key("histograms");
        obs::AppendHistograms(cell.delta, &json);
        json.EndObject();
        table.AddRow({g.spec.name, std::to_string(k), cell.engine,
                      FormatSeconds(cell.wall_seconds),
                      FormatCount(static_cast<uint64_t>(reads_per_second)),
                      FormatCount(cell.total_hits),
                      FormatCount(cell.stats.extend_calls),
                      FormatCount(cell.stats.mtree_leaves)});
      }
    }
  }
  json.EndArray().EndObject();

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }

  table.Print();
  std::printf("report written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
