// bench_rank_kernel — head-to-head of the OccTable gap-scan kernels.
//
// Builds one OccTable per {checkpoint rate} x {kernel} combination over the
// same BWT and measures the average per-call cost of the two rank
// primitives with the same LCG-driven measurement loop bench_report uses
// for calibration (random positions so the checkpoint gap scan is
// represented, serial dependency through the position so the loop cannot
// be vectorized away).
//
// Rank is expected to be kernel-invariant (single-symbol rank is one
// popcount per word under every kernel); RankAll is where the word64 and
// AVX2 kernels earn their keep, and where the gap widens with the
// checkpoint rate.
//
//   bench_rank_kernel [--name NAME] [--out DIR] [--smoke]
//
// Emits BENCH_<name>.json with created_by "bench_rank_kernel"; the schema
// is documented in docs/OBSERVABILITY.md and validated by
// tools/validate_bench_json.py.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bwt/bwt.h"
#include "bwt/occ_table.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

struct Measurement {
  uint32_t checkpoint_rate = 0;
  OccTable::RankKernel kernel = OccTable::RankKernel::kScalar;
  double rank_ns = 0;
  double rankall_ns = 0;
  size_t iters = 0;
};

// Same loop shape as bench_report's CalibrateRank: an LCG walks random rows
// and the result feeds a sink, so every iteration depends on the previous
// position and dead-code elimination cannot drop the measured calls.
Measurement MeasureKernel(const OccTable& occ, size_t iters) {
  Measurement m;
  m.checkpoint_rate = occ.checkpoint_rate();
  m.kernel = occ.kernel();
  m.iters = iters;
  const size_t rows = occ.size();
  uint64_t sink = 0;

  Stopwatch watch;
  size_t pos = 1;
  for (size_t i = 0; i < iters; ++i) {
    sink += occ.Rank(static_cast<DnaCode>(i & 3), pos);
    pos = (pos * 2862933555777941757ULL + 3037000493ULL) % rows;
  }
  m.rank_ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);

  uint32_t ranks[kDnaAlphabetSize];
  watch.Restart();
  pos = 1;
  for (size_t i = 0; i < iters; ++i) {
    occ.RankAll(pos, ranks);
    sink += ranks[i & 3];
    pos = (pos * 2862933555777941757ULL + 3037000493ULL) % rows;
  }
  m.rankall_ns = watch.ElapsedSeconds() * 1e9 / static_cast<double>(iters);

  if (sink == 0x5eed) std::printf(" ");  // defeat dead-code elimination
  return m;
}

int Run(int argc, char** argv) {
  std::string name = "rank_kernel";
  std::string out_dir = ".";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_rank_kernel [--name NAME] [--out DIR] "
                   "[--smoke]\n");
      return 2;
    }
  }

  const size_t genome_length = Scaled(smoke ? (1u << 16) : (1u << 21));
  const size_t iters = smoke ? 50000 : 400000;
  const std::vector<uint32_t> rates = {32, 64, 128};
  std::vector<OccTable::RankKernel> kernels = {OccTable::RankKernel::kScalar,
                                              OccTable::RankKernel::kWord64};
  if (OccTable::Avx2Available()) {
    kernels.push_back(OccTable::RankKernel::kAvx2);
  }

  PrintBanner(
      "bench_rank_kernel: gap-scan kernels -> BENCH_" + name + ".json",
      std::to_string(rates.size()) + " checkpoint rates x " +
          std::to_string(kernels.size()) + " kernels, " +
          FormatCount(iters) + " calls each" +
          (OccTable::Avx2Available() ? "" : " (avx2 unavailable: skipped)"));

  const auto genome = MakeGenome(genome_length, 42);
  const Bwt bwt = BwtFromText(genome).value();

  TablePrinter table({"rate", "kernel", "rank ns", "rankall ns"});
  std::vector<Measurement> measurements;
  for (const uint32_t rate : rates) {
    for (const OccTable::RankKernel kernel : kernels) {
      const OccTable occ = OccTable::Build(&bwt, rate, kernel).value();
      // One warmup pass so page faults and the branch predictor settle
      // outside the measured loops.
      (void)MeasureKernel(occ, iters / 10 + 1);
      const Measurement m = MeasureKernel(occ, iters);
      measurements.push_back(m);
      char rank_buf[32];
      char rankall_buf[32];
      std::snprintf(rank_buf, sizeof(rank_buf), "%.1f", m.rank_ns);
      std::snprintf(rankall_buf, sizeof(rankall_buf), "%.1f", m.rankall_ns);
      table.AddRow({std::to_string(rate), std::string(occ.kernel_name()),
                    rank_buf, rankall_buf});
    }
  }

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_rank_kernel")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .Key("avx2_available")
      .Value(OccTable::Avx2Available())
      .EndObject()
      .Key("genome_length")
      .Value(static_cast<uint64_t>(genome_length))
      .Key("measurements")
      .BeginArray();
  for (const Measurement& m : measurements) {
    json.BeginObject()
        .Key("checkpoint_rate")
        .Value(m.checkpoint_rate)
        .Key("kernel")
        .Value(OccTable::KernelName(m.kernel))
        .Key("rank_ns")
        .Value(m.rank_ns)
        .Key("rankall_ns")
        .Value(m.rankall_ns)
        .Key("iters")
        .Value(static_cast<uint64_t>(m.iters))
        .EndObject();
  }
  json.EndArray().EndObject();

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }

  table.Print();
  std::printf("report written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
