// Fig. 11(a): average match time per read while k varies, for the methods
// the paper compares — the BWT baseline [34] (S-tree + τ pruning), Amir's
// filter-and-verify, Cole's suffix-tree brute force, and Algorithm A. The
// paper ran 100 bp reads against the Rat genome; we run the same read model
// against the scaled rat-preset genome (see DESIGN.md for the substitution).
//
// Two Algorithm A columns are printed: "A(.)" is the paper's configuration
// (mismatch-information reuse, no τ cut-off); "A(.)+tau" additionally
// composes the τ heuristic (our production default).
//
// Expected shape (paper): tree-based methods degrade sharply with k while
// Amir's marking stays flat (it rescans the text each time); Cole's and the
// BWT baseline are comparable; Algorithm A is the strongest tree method.

#include <cstdio>

#include "baselines/amir_search.h"
#include "baselines/cole_search.h"
#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/stree_search.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 2u << 20;  // rat preset / 1024 ~ 2.8 Mbp
constexpr size_t kReadLength = 100;
constexpr size_t kReadCount = 20;

int Run() {
  const size_t genome_size = Scaled(kBaseGenomeSize);
  PrintBanner("Fig. 11(a): average match time vs k (reads of 100 bp)",
              "genome " + FormatCount(genome_size) + " bp, " +
                  std::to_string(kReadCount) + " reads");

  const auto genome = MakeGenome(genome_size);
  const auto reads = MakeReads(genome, kReadLength, kReadCount);

  const auto index = FmIndex::Build(genome).value();
  const STreeSearch bwt_baseline(&index);  // τ heuristic on, as in [34]
  const AmirSearch amir(&genome);
  const auto cole = ColeSearch::Build(genome).value();
  const AlgorithmA a_paper(&index, {.use_tau = false});  // paper's A
  const AlgorithmA a_tau(&index);                        // A + τ

  // Warm the index and caches so the first row is not penalized.
  (void)bwt_baseline.Search(reads[0], 1);
  (void)a_tau.Search(reads[0], 1);
  (void)cole.Search(reads[0], 1);

  TablePrinter table(
      {"k", "BWT [34]", "Amir's", "Cole's", "A(.)", "A(.)+tau", "n'"});
  size_t check = 0;
  for (const int32_t k : {1, 2, 3, 4, 5}) {
    Stopwatch watch;
    for (const auto& read : reads) check += bwt_baseline.Search(read, k).size();
    const double bwt_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) check += amir.Search(read, k).size();
    const double amir_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) check += cole.Search(read, k).size();
    const double cole_time = watch.ElapsedSeconds() / kReadCount;

    uint64_t leaves = 0;
    watch.Restart();
    for (const auto& read : reads) {
      SearchStats stats;
      check += a_paper.Search(read, k, &stats).size();
      leaves += stats.mtree_leaves;
    }
    const double a_time = watch.ElapsedSeconds() / kReadCount;

    watch.Restart();
    for (const auto& read : reads) check += a_tau.Search(read, k).size();
    const double a_tau_time = watch.ElapsedSeconds() / kReadCount;

    table.AddRow({std::to_string(k), FormatSeconds(bwt_time),
                  FormatSeconds(amir_time), FormatSeconds(cole_time),
                  FormatSeconds(a_time), FormatSeconds(a_tau_time),
                  FormatCount(leaves)});
  }
  table.Print();
  std::printf("(times per read over %zu reads; n' = Algorithm A M-tree "
              "leaves, summed; checksum %zu)\n",
              kReadCount, check);
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
