// Batch-search throughput: reads/sec vs worker threads over one shared
// FM-index (the BatchSearcher scaling curve). The index is immutable and the
// query path lock-free, so throughput should scale near-linearly until the
// thread count passes the host's cores; the run verifies every batched
// result is byte-identical to serial Search before timing anything.
//
// Target (multicore host): >= 3x reads/sec at 4 threads vs 1 thread. On
// hosts with fewer cores the table reports the hardware limit so a flat
// curve is self-explaining.

#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/batch_searcher.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 2u << 20;
constexpr size_t kReadLength = 100;
constexpr size_t kBaseReadCount = 2000;
constexpr int32_t kMismatches = 3;

int Run() {
  const size_t read_count = Scaled(kBaseReadCount);
  PrintBanner("Batch search throughput vs thread count",
              std::to_string(read_count) + " reads of " +
                  std::to_string(kReadLength) + " bp, k = " +
                  std::to_string(kMismatches));
  const auto genome = MakeGenome(Scaled(kBaseGenomeSize));
  const auto reads = MakeReads(genome, kReadLength, read_count);
  const auto index = FmIndex::Build(genome).value();

  std::vector<BatchQuery> queries;
  queries.reserve(reads.size());
  for (const auto& read : reads) queries.push_back({read, kMismatches});

  // Serial reference: one engine, one long-lived scratch — the strongest
  // single-thread baseline (same allocation profile as one pool worker).
  const AlgorithmA serial(&index);
  AlgorithmAScratch scratch;
  std::vector<std::vector<Occurrence>> expected;
  expected.reserve(queries.size());
  Stopwatch serial_watch;
  for (const auto& query : queries) {
    expected.push_back(
        serial.Search(query.pattern, query.k, nullptr, &scratch));
  }
  const double serial_seconds = serial_watch.ElapsedSeconds();

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u; serial reference: %s (%.0f reads/s)\n",
              cores, FormatSeconds(serial_seconds).c_str(),
              read_count / serial_seconds);

  TablePrinter table(
      {"threads", "batch time", "reads/s", "vs 1 thread", "identical"});
  double one_thread_seconds = 0;
  for (const int threads : {1, 2, 4, 8}) {
    BatchSearcher batch(&index, {.num_threads = threads});
    // Warm-up: populate per-worker scratches so the timed run measures the
    // steady state (no per-query allocation).
    (void)batch.Search(queries);
    Stopwatch watch;
    const BatchResult result = batch.Search(queries);
    const double seconds = watch.ElapsedSeconds();
    if (threads == 1) one_thread_seconds = seconds;

    size_t mismatched = 0;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (result.occurrences[i] != expected[i]) ++mismatched;
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  one_thread_seconds / seconds);
    table.AddRow({std::to_string(threads), FormatSeconds(seconds),
                  FormatCount(static_cast<uint64_t>(read_count / seconds)),
                  speedup,
                  mismatched == 0 ? "yes" : "NO (" +
                                                std::to_string(mismatched) +
                                                " queries differ)"});
  }
  table.Print();
  if (cores < 4) {
    std::printf("\n(host has %u core%s: speedup is capped at the hardware; "
                "run on >= 4 cores for the scaling curve)\n",
                cores, cores == 1 ? "" : "s");
  }
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
