// Ablation: the τ(i) cut-off heuristic of the BWT baseline [34], on its own
// (S-tree) and composed with Algorithm A, across k. The paper argues the
// heuristic is "not quite helpful" because it only relates r[i..m] to the
// whole of s; this bench quantifies exactly how much it prunes at our scale.

#include <cstdio>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "search/stree_search.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

constexpr size_t kBaseGenomeSize = 2u << 20;
constexpr size_t kReadLength = 100;
constexpr size_t kReadCount = 10;

int Run() {
  const size_t genome_size = Scaled(kBaseGenomeSize);
  PrintBanner("Ablation: tau(i) cut-off heuristic",
              "genome " + FormatCount(genome_size) + " bp, " +
                  std::to_string(kReadCount) + " reads of 100 bp");

  const auto genome = MakeGenome(genome_size);
  const auto reads = MakeReads(genome, kReadLength, kReadCount);
  const auto index = FmIndex::Build(genome).value();

  const STreeSearch stree_tau(&index, {.use_tau = true});
  const STreeSearch stree_plain(&index, {.use_tau = false});
  const AlgorithmA a_tau(&index, {.use_tau = true});
  const AlgorithmA a_plain(&index, {.use_tau = false});

  TablePrinter table({"k", "S-tree", "S-tree+tau", "A(.)", "A(.)+tau",
                      "nodes cut by tau"});
  for (const int32_t k : {1, 2, 3, 4, 5}) {
    auto time_engine = [&](const auto& engine, SearchStats* total) {
      Stopwatch watch;
      for (const auto& read : reads) {
        SearchStats stats;
        (void)engine.Search(read, k, &stats);
        if (total != nullptr) *total += stats;
      }
      return watch.ElapsedSeconds() / kReadCount;
    };
    SearchStats tau_stats;
    const double t_plain = time_engine(stree_plain, nullptr);
    const double t_tau = time_engine(stree_tau, &tau_stats);
    const double t_a_plain = time_engine(a_plain, nullptr);
    const double t_a_tau = time_engine(a_tau, nullptr);
    table.AddRow({std::to_string(k), FormatSeconds(t_plain),
                  FormatSeconds(t_tau), FormatSeconds(t_a_plain),
                  FormatSeconds(t_a_tau), FormatCount(tau_stats.tau_pruned)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
