// Serving-layer benchmark: closed-loop clients against a long-lived
// serve::Session, in-process (Submit/Wait) and over the loopback TCP
// front-end. Emits BENCH_<name>.json (created_by "bench_serve",
// validated by tools/validate_bench_json.py, gated by tools/bench_diff.py
// on the (genome, k, engine, threads) key where threads = client count).
//
// The workload is seeded and fixed across client counts, so total_hits
// and the aggregated SearchStats are deterministic: any change between a
// committed baseline and a fresh run means the served answer changed, not
// just the speed. Every run is verified against the direct serial engine
// before it is written — the bench refuses to report wrong answers.
//
// Closed-loop means each client keeps exactly one query outstanding
// (submit, wait, repeat), so concurrency = client count and the session
// is never driven into admission rejections; rejected_overloaded is
// reported and expected to be zero.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "search/algorithm_a.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/session.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

struct RunResult {
  double wall_seconds = 0;
  uint64_t total_hits = 0;
  uint64_t rejected_overloaded = 0;
  SearchStats stats;            // aggregated; in-process runs only
  bool has_stats = false;
  std::vector<uint64_t> queue_ns;  // per-query queue wait (in-process)
};

uint64_t Quantile(std::vector<uint64_t>* samples, double q) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t rank = static_cast<size_t>(q * (samples->size() - 1));
  return (*samples)[rank];
}

// Closed-loop in-process clients: each thread owns a slice of the query
// list and drives it through Submit + Wait, one outstanding at a time.
RunResult RunInProcess(serve::Session* session,
                       const std::vector<BatchQuery>& queries,
                       size_t clients) {
  std::vector<std::vector<Occurrence>> hits(queries.size());
  std::vector<SearchStats> stats(queries.size());
  std::vector<uint64_t> queue_ns(queries.size());
  std::atomic<bool> failed{false};
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = c; i < queries.size(); i += clients) {
        auto ticket = session->Submit(queries[i]);
        if (!ticket.ok()) {
          failed = true;
          return;
        }
        auto result = session->Wait(ticket.value());
        if (!result.ok() || !result->status.ok()) {
          failed = true;
          return;
        }
        hits[i] = std::move(result->hits);
        stats[i] = result->stats;
        queue_ns[i] = result->queue_ns;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RunResult out;
  out.wall_seconds = watch.ElapsedSeconds();
  if (failed) {
    std::fprintf(stderr, "in-process run failed (unexpected rejection)\n");
    std::exit(1);
  }
  out.has_stats = true;
  for (size_t i = 0; i < queries.size(); ++i) {
    out.total_hits += hits[i].size();
    out.stats += stats[i];
  }
  out.queue_ns = std::move(queue_ns);
  out.rejected_overloaded = session->Stats().rejected_overloaded;
  return out;
}

// Closed-loop TCP clients: each thread owns one connection and drives its
// slice through Client::Query (request/response, one outstanding).
RunResult RunTcp(uint16_t port, const std::vector<std::string>& ascii,
                 int32_t k, size_t clients) {
  std::vector<uint64_t> hit_counts(ascii.size());
  std::atomic<bool> failed{false};
  Stopwatch watch;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      auto client = serve::Client::Connect("127.0.0.1", port);
      if (!client.ok()) {
        failed = true;
        return;
      }
      for (size_t i = c; i < ascii.size(); i += clients) {
        auto response = (*client)->Query(ascii[i], k);
        if (!response.ok() || response->status != serve::WireStatus::kOk) {
          failed = true;
          return;
        }
        hit_counts[i] = response->hits.size();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  RunResult out;
  out.wall_seconds = watch.ElapsedSeconds();
  if (failed) {
    std::fprintf(stderr, "tcp run failed (transport or rejection)\n");
    std::exit(1);
  }
  for (const uint64_t n : hit_counts) out.total_hits += n;
  return out;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  bool tcp = true;
  std::string name = "serve";
  std::string out_dir = ".";
  int session_threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-tcp") == 0) {
      tcp = false;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      session_threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--name NAME] [--out DIR] [--smoke] "
                   "[--threads N] [--no-tcp]\n");
      return 2;
    }
  }
  if (session_threads <= 0) session_threads = 2;

  const std::string genome_name = smoke ? "smoke-32K" : "synth-1M";
  const size_t genome_length = smoke ? (1u << 15) : Scaled(1u << 20);
  const size_t read_length = smoke ? 50 : 100;
  const size_t read_count = smoke ? 24 : Scaled(240);
  const std::vector<int32_t> k_values =
      smoke ? std::vector<int32_t>{1} : std::vector<int32_t>{1, 3};
  const std::vector<size_t> client_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};

  PrintBanner("bench_serve: session serving throughput -> BENCH_" + name +
                  ".json",
              genome_name + ", " + std::to_string(read_count) + " reads of " +
                  std::to_string(read_length) + " bp, session threads = " +
                  std::to_string(session_threads));

  const auto genome = MakeGenome(genome_length);
  const auto reads = MakeReads(genome, read_length, read_count);
  const auto index = FmIndex::Build(genome).value();

  std::vector<std::string> ascii;
  ascii.reserve(reads.size());
  for (const auto& read : reads) {
    std::string s;
    for (const DnaCode code : read) s.push_back(CodeToChar(code));
    ascii.push_back(std::move(s));
  }

  // Ground truth per k: the serial engine's total hit count. Every serve
  // run must reproduce it exactly.
  const AlgorithmA serial(&index);
  AlgorithmAScratch scratch;
  std::vector<uint64_t> expected_hits;
  for (const int32_t k : k_values) {
    uint64_t total = 0;
    for (const auto& read : reads) {
      total += serial.Search(read, k, nullptr, &scratch).size();
    }
    expected_hits.push_back(total);
  }

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_serve")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .EndObject()
      .Key("workload")
      .BeginObject()
      .Key("genome")
      .Value(genome_name)
      .Key("genome_length")
      .Value(static_cast<uint64_t>(genome.size()))
      .Key("read_length")
      .Value(static_cast<uint64_t>(read_length))
      .Key("read_count")
      .Value(static_cast<uint64_t>(reads.size()))
      .Key("session_threads")
      .Value(session_threads)
      .EndObject();
  json.Key("runs").BeginArray();

  TablePrinter table({"transport", "k", "clients", "wall", "queries/s",
                      "hits", "queue p95"});

  for (size_t ki = 0; ki < k_values.size(); ++ki) {
    const int32_t k = k_values[ki];
    std::vector<BatchQuery> queries;
    queries.reserve(reads.size());
    for (const auto& read : reads) queries.push_back({read, k});

    for (const size_t clients : client_counts) {
      // Fresh session per run: its gauges and lifetime counters start at
      // zero, so rejected_overloaded is attributable to this run alone.
      serve::SessionOptions options;
      options.num_threads = session_threads;
      serve::Session session(&index, options);
      RunResult r = RunInProcess(&session, queries, clients);
      if (r.total_hits != expected_hits[ki]) {
        std::fprintf(stderr,
                     "serve_inproc k=%d clients=%zu: %llu hits, serial "
                     "found %llu — refusing to report wrong answers\n",
                     k, clients, static_cast<unsigned long long>(r.total_hits),
                     static_cast<unsigned long long>(expected_hits[ki]));
        return 1;
      }
      const double qps =
          r.wall_seconds > 0 ? static_cast<double>(reads.size()) / r.wall_seconds : 0;
      const uint64_t p50 = Quantile(&r.queue_ns, 0.50);
      const uint64_t p95 = Quantile(&r.queue_ns, 0.95);
      const uint64_t p99 = Quantile(&r.queue_ns, 0.99);
      json.BeginObject()
          .Key("genome")
          .Value(genome_name)
          .Key("genome_length")
          .Value(static_cast<uint64_t>(genome.size()))
          .Key("read_length")
          .Value(static_cast<uint64_t>(read_length))
          .Key("read_count")
          .Value(static_cast<uint64_t>(reads.size()))
          .Key("k")
          .Value(k)
          .Key("engine")
          .Value("serve_inproc")
          .Key("threads")
          .Value(static_cast<uint64_t>(clients))
          .Key("session_threads")
          .Value(session_threads)
          .Key("wall_seconds")
          .Value(r.wall_seconds)
          .Key("reads_per_second")
          .Value(qps)
          .Key("total_hits")
          .Value(r.total_hits)
          .Key("rejected_overloaded")
          .Value(r.rejected_overloaded)
          .Key("queue_p50_nanos")
          .Value(p50)
          .Key("queue_p95_nanos")
          .Value(p95)
          .Key("queue_p99_nanos")
          .Value(p99);
      json.Key("stats");
      obs::AppendSearchStats(r.stats, &json);
      json.EndObject();
      table.AddRow({"inproc", std::to_string(k), std::to_string(clients),
                    FormatSeconds(r.wall_seconds),
                    std::to_string(static_cast<uint64_t>(qps)),
                    FormatCount(r.total_hits),
                    FormatSeconds(static_cast<double>(p95) * 1e-9)});
    }

    if (!tcp) continue;
    for (const size_t clients : client_counts) {
      serve::SessionOptions options;
      options.num_threads = session_threads;
      serve::Session session(&index, options);
      serve::Server server(&session);
      if (const Status status = server.Start(); !status.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     std::string(status.message()).c_str());
        return 1;
      }
      RunResult r = RunTcp(server.port(), ascii, k, clients);
      server.Stop();
      if (r.total_hits != expected_hits[ki]) {
        std::fprintf(stderr,
                     "serve_tcp k=%d clients=%zu: %llu hits, serial found "
                     "%llu — refusing to report wrong answers\n",
                     k, clients, static_cast<unsigned long long>(r.total_hits),
                     static_cast<unsigned long long>(expected_hits[ki]));
        return 1;
      }
      const double qps =
          r.wall_seconds > 0 ? static_cast<double>(reads.size()) / r.wall_seconds : 0;
      json.BeginObject()
          .Key("genome")
          .Value(genome_name)
          .Key("genome_length")
          .Value(static_cast<uint64_t>(genome.size()))
          .Key("read_length")
          .Value(static_cast<uint64_t>(read_length))
          .Key("read_count")
          .Value(static_cast<uint64_t>(reads.size()))
          .Key("k")
          .Value(k)
          .Key("engine")
          .Value("serve_tcp")
          .Key("threads")
          .Value(static_cast<uint64_t>(clients))
          .Key("session_threads")
          .Value(session_threads)
          .Key("wall_seconds")
          .Value(r.wall_seconds)
          .Key("reads_per_second")
          .Value(qps)
          .Key("total_hits")
          .Value(r.total_hits)
          .Key("rejected_overloaded")
          .Value(r.rejected_overloaded)
          .EndObject();
      table.AddRow({"tcp", std::to_string(k), std::to_string(clients),
                    FormatSeconds(r.wall_seconds),
                    std::to_string(static_cast<uint64_t>(qps)),
                    FormatCount(r.total_hits), "-"});
    }
  }
  json.EndArray().EndObject();
  table.Print();

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
