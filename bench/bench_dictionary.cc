// Dictionary-engine benchmark: one amortized trie ∩ FM-descent
// (DictionarySearcher::SearchAll) versus N independent Algorithm A
// searches over the identical pattern set, across set sizes. Emits
// BENCH_<name>.json (created_by "bench_dictionary", validated by
// tools/validate_bench_json.py, gated by tools/bench_diff.py on the
// (genome, k, engine, threads) key — the per-run genome name carries the
// set size, e.g. "synth-1M/n4096", so cells stay distinct).
//
// Both engines run single-threaded on the same index with no prefix
// table, so the comparison isolates the shared-prefix amortization: the
// dictionary descent pays one ExtendAll per (trie node, range) state no
// matter how many patterns share that prefix, while the independent
// searches pay it once per pattern. Before any timing is reported the
// dictionary's per-pattern hit vectors are compared against Algorithm A's
// — the bench refuses to report wrong answers.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "dict/dictionary_searcher.h"
#include "dict/pattern_set_trie.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "search/algorithm_a.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

struct CellResult {
  double wall_seconds = 0;  // per evaluation of the whole set
  uint64_t total_hits = 0;
  SearchStats stats;  // one evaluation's worth
};

int Run(int argc, char** argv) {
  bool smoke = false;
  std::string name = "dictionary";
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_dictionary [--name NAME] [--out DIR] "
                   "[--smoke]\n");
      return 2;
    }
  }

  const std::string genome_name = smoke ? "smoke-32K" : "synth-1M";
  const size_t genome_length = smoke ? (1u << 15) : Scaled(1u << 20);
  const size_t pattern_length = 20;
  const std::vector<size_t> set_sizes =
      smoke ? std::vector<size_t>{16, 64}
            : std::vector<size_t>{16, 256, 4096};
  const std::vector<int32_t> k_values =
      smoke ? std::vector<int32_t>{0, 1} : std::vector<int32_t>{0, 1, 2};
  // Timing repetitions per cell; fixed constants so the work counters a
  // fresh run reports are reproducible against the committed baseline.
  const int iters = smoke ? 1 : 3;

  PrintBanner(
      "bench_dictionary: amortized trie descent vs independent searches -> "
      "BENCH_" + name + ".json",
      genome_name + ", " + std::to_string(pattern_length) +
          " bp patterns, set sizes up to " +
          std::to_string(set_sizes.back()));

  const auto genome = MakeGenome(genome_length);
  const auto index = FmIndex::Build(genome).value();
  // The largest set is generated once; smaller sets are its prefixes, so a
  // bigger cell strictly contains the work of a smaller one.
  const auto all_patterns =
      MakeReads(genome, pattern_length, set_sizes.back());

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_dictionary")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .EndObject()
      .Key("workload")
      .BeginObject()
      .Key("genome")
      .Value(genome_name)
      .Key("genome_length")
      .Value(static_cast<uint64_t>(genome.size()))
      .Key("pattern_length")
      .Value(static_cast<uint64_t>(pattern_length))
      .Key("max_pattern_count")
      .Value(static_cast<uint64_t>(all_patterns.size()))
      .EndObject();
  json.Key("runs").BeginArray();

  TablePrinter table(
      {"patterns", "k", "engine", "wall", "patterns/s", "hits", "speedup"});

  const DictionarySearcher dict(&index);
  const AlgorithmA serial(&index);
  AlgorithmAScratch scratch;

  for (const size_t count : set_sizes) {
    const std::vector<std::vector<DnaCode>> patterns(
        all_patterns.begin(), all_patterns.begin() + count);
    const auto trie =
        PatternSetTrie::Build(patterns, {.allow_duplicates = true}).value();

    for (const int32_t k : k_values) {
      // One measured evaluation per engine for hits + stats, then the
      // timing loop; the dictionary answer is checked pattern-for-pattern
      // against the independent searches before anything is written.
      CellResult d;
      const auto dict_hits = dict.SearchAll(trie, k, &d.stats);
      CellResult a;
      std::vector<std::vector<Occurrence>> serial_hits(patterns.size());
      for (size_t i = 0; i < patterns.size(); ++i) {
        SearchStats one;  // Search resets the out-param; accumulate by hand
        serial_hits[i] = serial.Search(patterns[i], k, &one, &scratch);
        a.stats += one;
        a.total_hits += serial_hits[i].size();
      }
      for (size_t i = 0; i < patterns.size(); ++i) {
        d.total_hits += dict_hits[i].size();
        if (dict_hits[i] != serial_hits[i]) {
          std::fprintf(stderr,
                       "n=%zu k=%d: dictionary and algorithm_a disagree on "
                       "pattern %zu — refusing to report wrong answers\n",
                       count, k, i);
          return 1;
        }
      }

      Stopwatch dict_watch;
      for (int it = 0; it < iters; ++it) dict.SearchAll(trie, k);
      d.wall_seconds = dict_watch.ElapsedSeconds() / iters;

      Stopwatch serial_watch;
      for (int it = 0; it < iters; ++it) {
        for (const auto& pattern : patterns) {
          serial.Search(pattern, k, nullptr, &scratch);
        }
      }
      a.wall_seconds = serial_watch.ElapsedSeconds() / iters;

      const std::string run_genome =
          genome_name + "/n" + std::to_string(count);
      const double speedup =
          d.wall_seconds > 0 ? a.wall_seconds / d.wall_seconds : 0;
      const CellResult* cells[2] = {&d, &a};
      const char* engines[2] = {"dictionary", "algorithm_a"};
      for (int e = 0; e < 2; ++e) {
        const CellResult& r = *cells[e];
        const double pps =
            r.wall_seconds > 0 ? count / r.wall_seconds : 0;
        json.BeginObject()
            .Key("genome")
            .Value(run_genome)
            .Key("genome_length")
            .Value(static_cast<uint64_t>(genome.size()))
            .Key("pattern_length")
            .Value(static_cast<uint64_t>(pattern_length))
            .Key("pattern_count")
            .Value(static_cast<uint64_t>(count))
            .Key("trie_nodes")
            .Value(static_cast<uint64_t>(trie.node_count()))
            .Key("k")
            .Value(k)
            .Key("engine")
            .Value(engines[e])
            .Key("threads")
            .Value(1)
            .Key("wall_seconds")
            .Value(r.wall_seconds)
            .Key("patterns_per_second")
            .Value(pps)
            .Key("total_hits")
            .Value(r.total_hits);
        json.Key("stats");
        obs::AppendSearchStats(r.stats, &json);
        json.EndObject();
        table.AddRow({std::to_string(count), std::to_string(k), engines[e],
                      FormatSeconds(r.wall_seconds),
                      std::to_string(static_cast<uint64_t>(pps)),
                      FormatCount(r.total_hits),
                      e == 0 ? std::to_string(speedup).substr(0, 4) + "x"
                             : "-"});
      }
    }
  }
  json.EndArray().EndObject();
  table.Print();

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
