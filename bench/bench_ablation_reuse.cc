// Ablation: what each reuse mechanism of Algorithm A contributes.
// kNone     = brute-force S-tree (no hash table),
// kInterval = hash-table reuse of repeated pairs (paper lines 4-9),
// kFull     = + chain derivation via merged mismatch arrays (node-creation).
// Run on a repeat-heavy genome — the workload the reuse machinery targets —
// and a uniform one for contrast.

#include <cstdio>

#include "bench_common.h"
#include "bwt/fm_index.h"
#include "search/algorithm_a.h"
#include "simulate/genome_generator.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

using Reuse = AlgorithmAOptions::Reuse;

constexpr size_t kBaseGenomeSize = 2u << 20;
constexpr size_t kReadLength = 100;
constexpr size_t kReadCount = 10;
constexpr int32_t kMismatches = 4;

void RunFlavor(const char* label, double repeat_fraction) {
  GenomeOptions options;
  options.length = Scaled(kBaseGenomeSize);
  options.repeat_fraction = repeat_fraction;
  options.repeat_length = 1000;
  options.seed = 42;
  const auto genome = GenerateGenome(options).value();
  const auto reads = MakeReads(genome, kReadLength, kReadCount);
  const auto index = FmIndex::Build(genome).value();

  std::printf("\n%s (repeat fraction %.0f%%), k = %d:\n", label,
              repeat_fraction * 100, kMismatches);
  TablePrinter table({"reuse level", "time/read", "search() calls",
                      "hash hits", "derived runs", "n'"});
  for (const Reuse reuse : {Reuse::kNone, Reuse::kInterval, Reuse::kFull}) {
    const AlgorithmA searcher(&index, {.reuse = reuse, .use_tau = false});
    SearchStats total;
    Stopwatch watch;
    for (const auto& read : reads) {
      SearchStats stats;
      (void)searcher.Search(read, kMismatches, &stats);
      total += stats;
    }
    const double per_read = watch.ElapsedSeconds() / kReadCount;
    const char* name = reuse == Reuse::kNone       ? "none (S-tree)"
                       : reuse == Reuse::kInterval ? "interval hash"
                                                   : "full (Algorithm A)";
    table.AddRow({name, FormatSeconds(per_read),
                  FormatCount(total.extend_calls),
                  FormatCount(total.reused_nodes),
                  FormatCount(total.derived_runs),
                  FormatCount(total.mtree_leaves)});
  }
  table.Print();
}

int Run() {
  PrintBanner("Ablation: Algorithm A reuse mechanisms",
              std::to_string(kReadCount) + " reads of 100 bp, no tau");
  RunFlavor("repeat-heavy genome", 0.6);
  RunFlavor("uniform genome", 0.0);
  std::printf("\n(search() savings = none minus interval/full columns; the "
              "hash pays off in proportion to repeat content)\n");
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main() { return bwtk::bench::Run(); }
