// Reuse benchmark: quantifies the three reuse layers added on top of the
// batch engines — the batch-scoped shared subtree memo
// (search/subtree_memo.h), the exact-duplicate result cache
// (search/result_cache.h), and the sharded k = 0 exact shortcut — against
// the reuse-off baseline. Emits BENCH_<name>.json (created_by
// "bench_reuse", validated by tools/validate_bench_json.py, gated by
// tools/bench_diff.py on the (genome, k, engine, threads) key where
// `engine` carries the reuse configuration).
//
// Two workloads:
//   * reuse-zipf:   a Zipf(s = 1.0) draw over a small pool of distinct
//                   patterns — a duplicate-heavy stream in which half the
//                   pool are first-symbol variants of the other half, so
//                   distinct queries still share suffixes (the memo's
//                   case, not just the cache's exact-duplicate case).
//   * reuse-unique: every query distinct — the overhead-exposure case;
//                   reuse-on is expected within a few percent of off.
//
// Timed runs are single-threaded on purpose: memoized multi-thread runs
// have timing-dependent SearchStats (see BatchOptions::shared_memo), and
// bench_diff gates stats exactly. The cross-validation grid, which only
// compares hit lists, runs multi-threaded.
//
// Every configuration's per-query hit lists are compared byte-for-byte
// against the reuse-off baseline (and the monolithic baseline against the
// serial engine) before anything is written — the bench refuses to report
// wrong answers. The cross-validation grid extends that check across
// engines x k = 0..5, monolithic and sharded.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "alphabet/dna.h"
#include "bwt/fm_index.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "search/algorithm_a.h"
#include "search/batch_searcher.h"
#include "search/result_cache.h"
#include "shard/sharded_index.h"
#include "shard/sharded_searcher.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace bwtk::bench {
namespace {

// One reuse configuration; `name` is the run's `engine` key in the report.
struct ConfigSpec {
  const char* name;
  bool memo = false;      // BatchOptions::shared_memo.enabled
  bool cache = false;     // BatchOptions::result_cache.enabled
  bool sharded = false;   // route through ShardedBatchSearcher
  bool shortcut = false;  // BatchOptions::sharded_exact_shortcut
};

constexpr ConfigSpec kConfigs[] = {
    {"batch_off"},
    {"batch_memo", /*memo=*/true},
    {"batch_cache", /*memo=*/false, /*cache=*/true},
    {"batch_memo_cache", /*memo=*/true, /*cache=*/true},
    {"sharded_off", false, false, /*sharded=*/true, /*shortcut=*/false},
    {"sharded_cache", false, true, /*sharded=*/true, /*shortcut=*/true},
};

// Zipf(s = 1.0) over ranks 1..n. Weights are exact IEEE divisions
// (1.0 / r), so the drawn sequence is reproducible across platforms —
// the query stream, and with it total_hits, is deterministic.
class ZipfSampler {
 public:
  explicit ZipfSampler(size_t n) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t r = 1; r <= n; ++r) {
      sum += 1.0 / static_cast<double>(r);
      cdf_.push_back(sum);
    }
  }

  size_t Draw(Rng* rng) const {
    const double u = rng->NextDouble() * cdf_.back();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

// `distinct` patterns: the first half sampled reads, the second half the
// same reads with the first symbol flipped — distinct keys for the result
// cache that still share their whole suffix with a pool member.
std::vector<std::vector<DnaCode>> MakePool(const std::vector<DnaCode>& genome,
                                           size_t read_length,
                                           size_t distinct, uint64_t seed) {
  auto pool = MakeReads(genome, read_length, (distinct + 1) / 2, seed);
  const size_t bases = pool.size();
  for (size_t i = 0; i < bases && pool.size() < distinct; ++i) {
    auto variant = pool[i];
    variant[0] = DnaCode((variant[0] + 1) % kDnaAlphabetSize);
    pool.push_back(std::move(variant));
  }
  return pool;
}

std::vector<BatchQuery> ZipfQueries(
    const std::vector<std::vector<DnaCode>>& pool, size_t count, int32_t k,
    uint64_t seed) {
  const ZipfSampler zipf(pool.size());
  Rng rng(seed);
  std::vector<BatchQuery> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back({pool[zipf.Draw(&rng)], k});
  }
  return queries;
}

std::vector<BatchQuery> UniqueQueries(
    const std::vector<std::vector<DnaCode>>& reads, int32_t k) {
  std::vector<BatchQuery> queries;
  queries.reserve(reads.size());
  for (const auto& read : reads) queries.push_back({read, k});
  return queries;
}

BatchOptions MakeOptions(const ConfigSpec& cfg, int threads,
                         BatchEngine engine,
                         std::shared_ptr<ResultCache>* cache_out) {
  BatchOptions options;
  options.num_threads = threads;
  options.engine = engine;
  options.sharded_exact_shortcut = cfg.shortcut;
  // The memo only exists for Algorithm A; enabling it under another engine
  // would be silently ignored — keep the configs honest instead.
  if (cfg.memo && engine == BatchEngine::kAlgorithmA) {
    options.shared_memo.enabled = true;
  }
  if (cfg.cache) {
    ResultCacheOptions cache_options;
    cache_options.enabled = true;
    auto cache = std::make_shared<ResultCache>(cache_options);
    options.result_cache_instance = cache;
    if (cache_out != nullptr) *cache_out = std::move(cache);
  }
  return options;
}

struct RunOutcome {
  double wall_seconds = std::numeric_limits<double>::max();
  uint64_t total_hits = 0;
  SearchStats stats;
  ResultCache::CacheStats cache_stats;
  uint64_t memo_lookups = 0;
  uint64_t memo_hits = 0;
  uint64_t memo_publishes = 0;
  std::vector<std::vector<Occurrence>> occurrences;  // from the first rep
};

// Runs `queries` under `cfg` `reps` times with a fresh searcher (and fresh
// cache) per rep, so every rep is an identical cold-start batch. Wall is
// the min across reps; hits/stats/counters come from the first rep (and
// hits are asserted identical across reps).
RunOutcome RunTimed(const FmIndex& index, const ShardedIndex& sharded,
                    const ConfigSpec& cfg,
                    const std::vector<BatchQuery>& queries, int reps) {
  RunOutcome out;
  for (int rep = 0; rep < reps; ++rep) {
    std::shared_ptr<ResultCache> cache;
    const BatchOptions options =
        MakeOptions(cfg, /*threads=*/1, BatchEngine::kAlgorithmA, &cache);
#if BWTK_METRICS_ENABLED
    obs::MetricsBlock before;
    if (rep == 0) before = obs::MetricsRegistry::Instance().Snapshot();
#endif
    BatchResult result;
    double wall = 0;
    if (cfg.sharded) {
      ShardedBatchSearcher searcher(&sharded, options);
      Stopwatch watch;
      auto sharded_result = searcher.Search(queries);
      wall = watch.ElapsedSeconds();
      if (!sharded_result.ok()) {
        std::fprintf(stderr, "%s: sharded search failed: %s\n", cfg.name,
                     std::string(sharded_result.status().message()).c_str());
        std::exit(1);
      }
      result = std::move(sharded_result.value());
    } else {
      BatchSearcher searcher(&index, options);
      Stopwatch watch;
      result = searcher.Search(queries);
      wall = watch.ElapsedSeconds();
    }
    uint64_t hits = 0;
    for (const auto& list : result.occurrences) hits += list.size();
    if (rep == 0) {
      out.total_hits = hits;
      out.stats = result.stats;
      out.occurrences = std::move(result.occurrences);
      if (cache != nullptr) out.cache_stats = cache->Stats();
#if BWTK_METRICS_ENABLED
      const obs::MetricsBlock delta =
          obs::Diff(obs::MetricsRegistry::Instance().Snapshot(), before);
      out.memo_lookups = delta.counters[obs::kCounterMemoLookups];
      out.memo_hits = delta.counters[obs::kCounterMemoHits];
      out.memo_publishes = delta.counters[obs::kCounterMemoPublishes];
#endif
    } else if (hits != out.total_hits) {
      std::fprintf(stderr, "%s: rep %d found %llu hits, rep 0 found %llu\n",
                   cfg.name, rep, static_cast<unsigned long long>(hits),
                   static_cast<unsigned long long>(out.total_hits));
      std::exit(1);
    }
    out.wall_seconds = std::min(out.wall_seconds, wall);
  }
  return out;
}

bool SameHits(const std::vector<std::vector<Occurrence>>& a,
              const std::vector<std::vector<Occurrence>>& b,
              const char* label) {
  if (a.size() != b.size()) {
    std::fprintf(stderr, "%s: query count mismatch (%zu vs %zu)\n", label,
                 a.size(), b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::fprintf(stderr, "%s: hits differ at query %zu\n", label, i);
      return false;
    }
  }
  return true;
}

// The acceptance grid: engines x k, monolithic and sharded, reuse-on vs
// reuse-off, per-query byte identity. Returns the number of validated
// (engine, k, topology) cells; sets *ok = false on any divergence.
size_t CrossValidate(const FmIndex& index, const ShardedIndex& sharded,
                     const std::vector<std::vector<DnaCode>>& pool,
                     bool smoke, int threads, bool* ok) {
  // Duplicate every pool pattern so the cache path is exercised in-batch.
  struct GridCell {
    BatchEngine engine;
    std::vector<int32_t> k_values;
  };
  const std::vector<GridCell> grid =
      smoke ? std::vector<GridCell>{{BatchEngine::kAlgorithmA, {0, 2}},
                                    {BatchEngine::kSTree, {0, 2}}}
            : std::vector<GridCell>{
                  {BatchEngine::kAlgorithmA, {0, 1, 2, 3, 4, 5}},
                  {BatchEngine::kSTree, {0, 1, 2, 3, 4, 5}},
                  // Levenshtein blow-up makes k > 2 impractical here; the
                  // cache path is engine-agnostic, so small k suffices.
                  {BatchEngine::kKError, {0, 1, 2}}};

  size_t cells = 0;
  for (const GridCell& cell : grid) {
    for (const int32_t k : cell.k_values) {
      std::vector<BatchQuery> queries;
      queries.reserve(pool.size() * 2);
      for (const auto& pattern : pool) queries.push_back({pattern, k});
      for (const auto& pattern : pool) queries.push_back({pattern, k});
      const std::string label =
          std::string(BatchEngineName(cell.engine)) + "/k=" +
          std::to_string(k);

      // Monolithic: reuse-off baseline vs memo+cache.
      ConfigSpec off{"crossval_off"};
      ConfigSpec reuse{"crossval_reuse", /*memo=*/true, /*cache=*/true};
      BatchResult base_mono, reuse_mono;
      {
        BatchSearcher searcher(
            &index, MakeOptions(off, threads, cell.engine, nullptr));
        base_mono = searcher.Search(queries);
      }
      {
        BatchSearcher searcher(
            &index, MakeOptions(reuse, threads, cell.engine, nullptr));
        reuse_mono = searcher.Search(queries);
      }
      if (!SameHits(base_mono.occurrences, reuse_mono.occurrences,
                    (label + " monolithic reuse-on vs off").c_str())) {
        *ok = false;
      }
      ++cells;

      // Sharded: full fan-out baseline vs cache + k = 0 shortcut; and the
      // sharded baseline against the monolithic one (coordinate identity).
      ConfigSpec shard_off{"crossval_sharded_off", false, false, true, false};
      ConfigSpec shard_reuse{"crossval_sharded_reuse", false, true, true,
                             true};
      BatchResult base_shard, reuse_shard;
      {
        ShardedBatchSearcher searcher(
            &sharded, MakeOptions(shard_off, threads, cell.engine, nullptr));
        auto result = searcher.Search(queries);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: sharded baseline failed: %s\n",
                       label.c_str(),
                       std::string(result.status().message()).c_str());
          *ok = false;
          continue;
        }
        base_shard = std::move(result.value());
      }
      {
        ShardedBatchSearcher searcher(
            &sharded,
            MakeOptions(shard_reuse, threads, cell.engine, nullptr));
        auto result = searcher.Search(queries);
        if (!result.ok()) {
          std::fprintf(stderr, "%s: sharded reuse run failed: %s\n",
                       label.c_str(),
                       std::string(result.status().message()).c_str());
          *ok = false;
          continue;
        }
        reuse_shard = std::move(result.value());
      }
      if (!SameHits(base_shard.occurrences, reuse_shard.occurrences,
                    (label + " sharded reuse-on vs off").c_str())) {
        *ok = false;
      }
      if (!SameHits(base_mono.occurrences, base_shard.occurrences,
                    (label + " sharded vs monolithic").c_str())) {
        *ok = false;
      }
      ++cells;
    }
  }
  return cells;
}

int Run(int argc, char** argv) {
  bool smoke = false;
  std::string name = "reuse";
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_reuse [--name NAME] [--out DIR] [--smoke]\n");
      return 2;
    }
  }

  const std::string genome_tag = smoke ? "smoke-32K" : "synth-1M";
  const size_t genome_length = smoke ? (1u << 15) : Scaled(1u << 20);
  const size_t read_length = smoke ? 50 : 100;
  const size_t query_count = smoke ? 96 : Scaled(480);
  const size_t zipf_distinct = smoke ? 16 : 64;
  const std::vector<int32_t> k_values =
      smoke ? std::vector<int32_t>{1} : std::vector<int32_t>{1, 3};
  const int reps = smoke ? 1 : 2;
  const int crossval_threads = 4;

  PrintBanner(
      "bench_reuse: shared-memo + result-cache reuse -> BENCH_" + name +
          ".json",
      genome_tag + ", " + std::to_string(query_count) + " queries of " +
          std::to_string(read_length) + " bp (zipf over " +
          std::to_string(zipf_distinct) + " distinct / all-unique), " +
          std::to_string(reps) + " rep(s), timed runs single-threaded");

  const auto genome = MakeGenome(genome_length);
  const auto index = FmIndex::Build(genome).value();
  ShardedIndexOptions shard_options;
  shard_options.num_shards = smoke ? 4 : 8;
  shard_options.overlap = read_length + 16;
  const auto sharded = ShardedIndex::Build(genome, shard_options).value();

  const auto zipf_pool = MakePool(genome, read_length, zipf_distinct, 7);
  const auto unique_reads =
      MakeReads(genome, read_length, query_count, /*seed=*/9);

  // Cross-validation grid first: a correctness failure should abort before
  // any timing work. The grid uses its own (smaller) text in full mode so
  // k = 5 stays tractable.
  bool grid_ok = true;
  size_t grid_cells = 0;
  {
    const auto cv_genome = smoke ? genome : MakeGenome(1u << 17, 43);
    const size_t cv_read_length = smoke ? 40 : 60;
    const auto cv_index = smoke ? FmIndex::Build(genome).value()
                                : FmIndex::Build(cv_genome).value();
    ShardedIndexOptions cv_shard_options;
    cv_shard_options.num_shards = 4;
    cv_shard_options.overlap = cv_read_length + 12;
    const auto cv_sharded =
        ShardedIndex::Build(cv_genome, cv_shard_options).value();
    const auto cv_pool =
        MakePool(cv_genome, cv_read_length, smoke ? 12 : 24, 11);
    grid_cells = CrossValidate(cv_index, cv_sharded, cv_pool, smoke,
                               crossval_threads, &grid_ok);
    if (!grid_ok) {
      std::fprintf(stderr,
                   "cross-validation grid diverged — refusing to report "
                   "wrong answers\n");
      return 1;
    }
    std::printf("cross-validation: %zu cells byte-identical\n\n", grid_cells);
  }

  struct Row {
    std::string workload;
    int32_t k;
    const ConfigSpec* config;
    size_t queries;
    size_t distinct;
    RunOutcome outcome;
  };
  std::vector<Row> rows;
  // Reserve the exact row count: `baseline` below points into `rows`, so
  // the vector must never reallocate.
  rows.reserve(k_values.size() * 2 *
               (sizeof(kConfigs) / sizeof(kConfigs[0])));

  const AlgorithmA serial(&index);
  AlgorithmAScratch scratch;
  TablePrinter table({"workload", "k", "config", "wall", "reads/s", "hits",
                      "cache hits", "memo hits"});

  for (const int32_t k : k_values) {
    struct Workload {
      std::string name;
      std::vector<BatchQuery> queries;
      size_t distinct;
    };
    const std::vector<Workload> workloads = {
        {"reuse-zipf-" + genome_tag,
         ZipfQueries(zipf_pool, query_count, k, 101 + k), zipf_distinct},
        {"reuse-unique-" + genome_tag, UniqueQueries(unique_reads, k),
         unique_reads.size()},
    };
    for (const Workload& workload : workloads) {
      const RunOutcome* baseline = nullptr;
      for (const ConfigSpec& cfg : kConfigs) {
        rows.push_back({workload.name, k, &cfg, workload.queries.size(),
                        workload.distinct,
                        RunTimed(index, sharded, cfg, workload.queries,
                                 reps)});
        const RunOutcome& outcome = rows.back().outcome;

        // Correctness gate: the monolithic baseline must match the serial
        // engine per query; every other config must match the baseline.
        const std::string label = workload.name + "/k=" +
                                  std::to_string(k) + "/" + cfg.name;
        if (std::strcmp(cfg.name, "batch_off") == 0) {
          for (size_t i = 0; i < workload.queries.size(); ++i) {
            const auto expected = serial.Search(workload.queries[i].pattern,
                                                k, nullptr, &scratch);
            if (outcome.occurrences[i] != expected) {
              std::fprintf(stderr,
                           "%s: query %zu differs from the serial engine — "
                           "refusing to report wrong answers\n",
                           label.c_str(), i);
              return 1;
            }
          }
          baseline = &outcome;
        } else if (!SameHits(baseline->occurrences, outcome.occurrences,
                             label.c_str())) {
          std::fprintf(stderr, "refusing to report wrong answers\n");
          return 1;
        }
        const double qps =
            outcome.wall_seconds > 0
                ? static_cast<double>(workload.queries.size()) /
                      outcome.wall_seconds
                : 0;
        table.AddRow({workload.name, std::to_string(k), cfg.name,
                      FormatSeconds(outcome.wall_seconds),
                      std::to_string(static_cast<uint64_t>(qps)),
                      FormatCount(outcome.total_hits),
                      FormatCount(outcome.cache_stats.hits),
                      FormatCount(outcome.memo_hits)});
      }
    }
  }

  // Aggregate speedups: reuse-off wall over memo+cache wall, summed per
  // workload family across k (monolithic), plus the sharded cache ratio.
  auto wall_sum = [&](const std::string& family, const char* config) {
    double sum = 0;
    for (const Row& row : rows) {
      if (row.workload.find(family) != std::string::npos &&
          std::strcmp(row.config->name, config) == 0) {
        sum += row.outcome.wall_seconds;
      }
    }
    return sum;
  };
  const double zipf_off = wall_sum("reuse-zipf", "batch_off");
  const double zipf_full = wall_sum("reuse-zipf", "batch_memo_cache");
  const double unique_off = wall_sum("reuse-unique", "batch_off");
  const double unique_full = wall_sum("reuse-unique", "batch_memo_cache");
  const double zipf_shard_off = wall_sum("reuse-zipf", "sharded_off");
  const double zipf_shard_cache = wall_sum("reuse-zipf", "sharded_cache");
  const double zipf_speedup = zipf_full > 0 ? zipf_off / zipf_full : 0;
  const double unique_ratio = unique_full > 0 ? unique_off / unique_full : 0;
  const double zipf_sharded_speedup =
      zipf_shard_cache > 0 ? zipf_shard_off / zipf_shard_cache : 0;

  obs::JsonWriter json;
  json.BeginObject()
      .Key("schema_version")
      .Value(1)
      .Key("name")
      .Value(name)
      .Key("created_by")
      .Value("bench_reuse")
      .Key("smoke")
      .Value(smoke)
      .Key("scale")
      .Value(BenchScale())
      .Key("hardware")
      .BeginObject()
      .Key("hardware_concurrency")
      .Value(static_cast<uint64_t>(std::thread::hardware_concurrency()))
      .Key("metrics_compiled_in")
      .Value(BWTK_METRICS_ENABLED != 0)
      .EndObject()
      .Key("workload")
      .BeginObject()
      .Key("genome")
      .Value(genome_tag)
      .Key("genome_length")
      .Value(static_cast<uint64_t>(genome.size()))
      .Key("read_length")
      .Value(static_cast<uint64_t>(read_length))
      .Key("query_count")
      .Value(static_cast<uint64_t>(query_count))
      .Key("zipf_distinct")
      .Value(static_cast<uint64_t>(zipf_distinct))
      .Key("zipf_exponent")
      .Value(1.0)
      .Key("reps")
      .Value(reps)
      .Key("timed_threads")
      .Value(1)
      .Key("num_shards")
      .Value(static_cast<uint64_t>(shard_options.num_shards))
      .EndObject()
      .Key("cross_validation")
      .BeginObject()
      .Key("cells")
      .Value(static_cast<uint64_t>(grid_cells))
      .Key("byte_identical")
      .Value(grid_ok)
      .Key("max_k")
      .Value(smoke ? 2 : 5)
      .Key("engines")
      .BeginArray();
  json.Value("algorithm_a").Value("stree");
  if (!smoke) json.Value("kerror");
  json.EndArray().EndObject();

  json.Key("runs").BeginArray();
  for (const Row& row : rows) {
    const RunOutcome& r = row.outcome;
    const double qps =
        r.wall_seconds > 0
            ? static_cast<double>(row.queries) / r.wall_seconds
            : 0;
    json.BeginObject()
        .Key("genome")
        .Value(row.workload)
        .Key("genome_length")
        .Value(static_cast<uint64_t>(genome.size()))
        .Key("read_length")
        .Value(static_cast<uint64_t>(read_length))
        .Key("read_count")
        .Value(static_cast<uint64_t>(row.queries))
        .Key("distinct_queries")
        .Value(static_cast<uint64_t>(row.distinct))
        .Key("k")
        .Value(row.k)
        .Key("engine")
        .Value(row.config->name)
        .Key("threads")
        .Value(1)
        .Key("reps")
        .Value(reps)
        .Key("wall_seconds")
        .Value(r.wall_seconds)
        .Key("reads_per_second")
        .Value(qps)
        .Key("total_hits")
        .Value(r.total_hits)
        .Key("cache_hits")
        .Value(r.cache_stats.hits)
        .Key("cache_misses")
        .Value(r.cache_stats.misses)
        .Key("cache_evictions")
        .Value(r.cache_stats.evictions)
        .Key("memo_lookups")
        .Value(r.memo_lookups)
        .Key("memo_hits")
        .Value(r.memo_hits)
        .Key("memo_publishes")
        .Value(r.memo_publishes);
    json.Key("stats");
    obs::AppendSearchStats(r.stats, &json);
    json.EndObject();
  }
  json.EndArray();

  json.Key("aggregate")
      .BeginObject()
      .Key("zipf_speedup_full")
      .Value(zipf_speedup)
      .Key("unique_ratio_full")
      .Value(unique_ratio)
      .Key("zipf_speedup_sharded")
      .Value(zipf_sharded_speedup)
      .EndObject();
  json.EndObject();

  table.Print();
  std::printf(
      "\naggregate: zipf memo+cache speedup %.2fx, unique ratio %.2fx, "
      "sharded cache speedup %.2fx\n",
      zipf_speedup, unique_ratio, zipf_sharded_speedup);

  const std::string path = out_dir + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << std::move(json).TakeString() << "\n";
  if (!out.flush()) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace bwtk::bench

int main(int argc, char** argv) { return bwtk::bench::Run(argc, argv); }
