#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "simulate/genome_generator.h"
#include "util/logging.h"

namespace bwtk::bench {

double BenchScale() {
  const char* env = std::getenv("BWTK_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return std::clamp(value > 0 ? value : 1.0, 0.01, 1024.0);
}

size_t Scaled(size_t base_size) {
  const double scaled = static_cast<double>(base_size) * BenchScale();
  return std::max<size_t>(1 << 12, static_cast<size_t>(scaled));
}

std::vector<DnaCode> MakeGenome(size_t length, uint64_t seed) {
  GenomeOptions options;
  options.length = length;
  options.gc_content = 0.41;
  options.repeat_fraction = 0.3;
  options.seed = seed;
  auto genome = GenerateGenome(options);
  BWTK_CHECK(genome.ok()) << genome.status().ToString();
  return std::move(genome).value();
}

std::vector<std::vector<DnaCode>> MakeReads(const std::vector<DnaCode>& genome,
                                            size_t read_length,
                                            size_t read_count,
                                            uint64_t seed) {
  ReadSimOptions options;
  options.read_length = read_length;
  options.read_count = read_count;
  options.mutation_rate = 0.001;
  options.error_rate = 0.02;
  options.both_strands = false;
  options.seed = seed;
  auto reads = SimulateReads(genome, options);
  BWTK_CHECK(reads.ok()) << reads.status().ToString();
  std::vector<std::vector<DnaCode>> queries;
  queries.reserve(reads->size());
  for (auto& read : *reads) queries.push_back(std::move(read.sequence));
  return queries;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf("%c %-*s", c == 0 ? '|' : '|',
                  static_cast<int>(widths[c]), cell.c_str());
      std::printf(" ");
    }
    std::printf("|\n");
  };
  auto print_rule = [&] {
    for (const size_t w : widths) {
      std::printf("+%s", std::string(w + 2, '-').c_str());
    }
    std::printf("+\n");
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f us", seconds * 1e6);
  }
  return buffer;
}

std::string FormatMb(size_t bytes) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f MB", bytes / 1048576.0);
  return buffer;
}

std::string FormatCount(uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  for (size_t i = 0; i < raw.size(); ++i) {
    if (i > 0 && (raw.size() - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

void PrintBanner(const std::string& title, const std::string& setup) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title.c_str());
  std::printf("%s  [BWTK_BENCH_SCALE=%.2f]\n", setup.c_str(), BenchScale());
  std::printf("==============================================================="
              "=\n");
}

std::string DescribeIndexConfig(const FmIndex& index) {
  return "kernel=" + std::string(index.rank_kernel_name()) +
         " prefix_q=" + std::to_string(index.prefix_table_q());
}

}  // namespace bwtk::bench
