#!/usr/bin/env python3
"""Compare two bench_report JSON files and gate on regressions.

Usage:
    tools/bench_diff.py BASELINE.json NEW.json [--threshold PCT]
                        [--genome-thresholds JSON|@FILE]
                        [--gate-wall] [--wall-threshold PCT]

Runs are matched by (genome, k, engine, threads). For each matched pair
the tool prints a delta table and applies two kinds of gates:

Correctness (always fatal): 'total_hits' and 'stats.completed_paths'
must be byte-identical between baseline and new. The workloads are
seeded and deterministic, so any change here means the search found a
different answer — a bug, not a perf delta.

Work counters (fatal past --threshold, default 10%): deterministic
algorithm-work measures — stats.extend_calls, stats.stree_nodes,
stats.mtree_nodes, stats.mtree_leaves — may not *increase* by more than
the threshold. These are machine-independent (a fixed workload expands a
fixed tree), which makes them the right CI gate: a committed baseline
from one machine is comparable with a fresh run on another. Decreases
are improvements and never gated. --genome-thresholds overrides the
global threshold per genome — either an inline JSON object or @FILE
pointing at one, mapping genome name to max % increase, e.g.
'{"uniform_1m": 5, "repetitive_1m": 25}'. Repetitive genomes expand
deeper mismatch trees, so small code changes move their counters more;
the map lets CI pin tight gates on stable genomes without flaking on
volatile ones. Genomes absent from the map use --threshold.

Wall time (informational by default): reads_per_second deltas are
printed but only gated with --gate-wall (threshold --wall-threshold,
default 20%), because absolute throughput is not comparable across
machines. Use --gate-wall only when baseline and new ran on the same
hardware.

Runs present in the baseline but missing from the new report are fatal
(coverage must not silently shrink); runs only in the new report are
listed but allowed.

Exit codes: 0 clean, 1 regression(s) found, 2 usage/IO error.

Standard library only.
"""

import argparse
import json
import sys

# (label, getter) — deterministic work counters gated on increase.
WORK_COUNTERS = (
    ("extend_calls", lambda run: run.get("stats", {}).get("extend_calls")),
    ("stree_nodes", lambda run: run.get("stats", {}).get("stree_nodes")),
    ("mtree_nodes", lambda run: run.get("stats", {}).get("mtree_nodes")),
    ("mtree_leaves", lambda run: run.get("stats", {}).get("mtree_leaves")),
)

# Fields that must not change at all (deterministic correctness).
EXACT_FIELDS = (
    ("total_hits", lambda run: run.get("total_hits")),
    ("completed_paths", lambda run: run.get("stats", {}).get("completed_paths")),
)


def run_key(run):
    return (
        run.get("genome"),
        run.get("k"),
        run.get("engine"),
        run.get("threads"),
    )


def key_str(key):
    genome, k, engine, threads = key
    return f"{genome}/k={k}/{engine}/t={threads}"


def load_runs(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    runs = doc.get("runs")
    if not isinstance(runs, list):
        raise ValueError(f"{path}: no 'runs' array (not a bench_report file?)")
    indexed = {}
    for run in runs:
        if not isinstance(run, dict):
            continue
        key = run_key(run)
        if key in indexed:
            raise ValueError(f"{path}: duplicate run {key_str(key)}")
        indexed[key] = run
    return doc, indexed


def parse_genome_thresholds(spec):
    """'{"g": 5}' or '@path/to.json' -> dict of genome name -> float pct."""
    if spec is None:
        return {}
    if spec.startswith("@"):
        with open(spec[1:], "r", encoding="utf-8") as f:
            raw = json.load(f)
    else:
        raw = json.loads(spec)
    if not isinstance(raw, dict):
        raise ValueError("--genome-thresholds must be a JSON object")
    thresholds = {}
    for genome, value in raw.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(
                f"--genome-thresholds[{genome!r}]: expected a number, "
                f"got {value!r}"
            )
        if value < 0:
            raise ValueError(
                f"--genome-thresholds[{genome!r}]: must be >= 0, got {value}"
            )
        thresholds[genome] = float(value)
    return thresholds


def pct_change(baseline, new):
    if baseline == 0:
        return 0.0 if new == 0 else float("inf")
    return 100.0 * (new - baseline) / baseline


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], add_help=True
    )
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="max allowed %% increase in work counters (default 10)",
    )
    parser.add_argument(
        "--genome-thresholds",
        default=None,
        metavar="JSON|@FILE",
        help="per-genome work-counter thresholds as a JSON object "
        "(genome name -> max %% increase) or @FILE containing one; "
        "genomes not in the map fall back to --threshold",
    )
    parser.add_argument(
        "--gate-wall",
        action="store_true",
        help="also fail on reads_per_second drops past --wall-threshold",
    )
    parser.add_argument(
        "--wall-threshold",
        type=float,
        default=20.0,
        help="max allowed %% drop in reads_per_second with --gate-wall "
        "(default 20)",
    )
    args = parser.parse_args(argv[1:])

    try:
        genome_thresholds = parse_genome_thresholds(args.genome_thresholds)
        base_doc, base_runs = load_runs(args.baseline)
        new_doc, new_runs = load_runs(args.new)
    except (OSError, json.JSONDecodeError, ValueError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    print(
        f"baseline: {args.baseline} ({base_doc.get('name', '?')}, "
        f"{len(base_runs)} runs)"
    )
    print(f"new:      {args.new} ({new_doc.get('name', '?')}, "
          f"{len(new_runs)} runs)")
    print(f"gate: work counters +{args.threshold:g}%; wall "
          + (f"gated at -{args.wall_threshold:g}%" if args.gate_wall
             else "informational"))
    if genome_thresholds:
        overrides = ", ".join(
            f"{genome}=+{pct:g}%"
            for genome, pct in sorted(genome_thresholds.items())
        )
        print(f"per-genome overrides: {overrides}")
    print()

    failures = []
    header = (
        f"{'run':<40} {'metric':<16} {'baseline':>14} "
        f"{'new':>14} {'delta%':>9}  verdict"
    )
    print(header)
    print("-" * len(header))

    for key in sorted(base_runs, key=key_str):
        base = base_runs[key]
        label = key_str(key)
        if key not in new_runs:
            failures.append(f"{label}: missing from new report")
            print(f"{label:<40} {'(run)':<16} {'present':>14} "
                  f"{'MISSING':>14} {'':>9}  FAIL")
            continue
        new = new_runs[key]
        threshold = genome_thresholds.get(key[0], args.threshold)

        for metric, get in EXACT_FIELDS:
            b, n = get(base), get(new)
            if b is None or n is None:
                continue  # older schema without the field: nothing to gate
            verdict = "ok" if b == n else "FAIL"
            if b != n:
                failures.append(
                    f"{label}: {metric} changed {b} -> {n} "
                    "(correctness field, must be identical)"
                )
            if b != n:
                print(f"{label:<40} {metric:<16} {b:>14} {n:>14} "
                      f"{'':>9}  {verdict}")

        for metric, get in WORK_COUNTERS:
            b, n = get(base), get(new)
            if b is None or n is None:
                continue
            delta = pct_change(b, n)
            over = delta > threshold
            verdict = "FAIL" if over else "ok"
            if over:
                failures.append(
                    f"{label}: {metric} +{delta:.1f}% "
                    f"({b} -> {n}, threshold +{threshold:g}%)"
                )
            print(f"{label:<40} {metric:<16} {b:>14} {n:>14} "
                  f"{delta:>8.1f}%  {verdict}")

        b_rps = base.get("reads_per_second")
        n_rps = new.get("reads_per_second")
        if isinstance(b_rps, (int, float)) and isinstance(n_rps, (int, float)):
            delta = pct_change(b_rps, n_rps)
            gated = args.gate_wall and delta < -args.wall_threshold
            verdict = "FAIL" if gated else (
                "ok" if args.gate_wall else "info")
            if gated:
                failures.append(
                    f"{label}: reads_per_second {delta:.1f}% "
                    f"({b_rps:.0f} -> {n_rps:.0f}, "
                    f"threshold -{args.wall_threshold:g}%)"
                )
            print(f"{label:<40} {'reads_per_sec':<16} {b_rps:>14.0f} "
                  f"{n_rps:>14.0f} {delta:>8.1f}%  {verdict}")

    extra = sorted(set(new_runs) - set(base_runs), key=key_str)
    if extra:
        print()
        for key in extra:
            print(f"note: {key_str(key)} only in new report (allowed)")

    print()
    if failures:
        print(f"REGRESSIONS ({len(failures)}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
