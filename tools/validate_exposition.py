#!/usr/bin/env python3
"""Validate /metrics (Prometheus text) and /varz.json scrapes from the
serving tier's telemetry listener (serve::HttpExpositionServer).

Usage:
  tools/validate_exposition.py --metrics SCRAPE.txt [--metrics SCRAPE2.txt]
                               [--varz VARZ.json [--varz VARZ2.json]]

Checks, against the conventions documented in docs/OBSERVABILITY.md
("Live telemetry"):

/metrics scrapes:
  * every non-comment line is `name[{labels}] value` with a metric name
    matching the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]* and the
    library's `bwtk_` prefix;
  * every sample is preceded by # HELP and # TYPE lines for its family,
    and the TYPE is one of counter/gauge/histogram;
  * counter family names end in `_total` (histogram families exempt:
    their _bucket/_sum/_count series follow the histogram convention);
  * sample values parse as floats; histogram `le` buckets within a series
    are cumulative (non-decreasing);
  * when two or more --metrics files are given (scrapes of the SAME
    process, oldest first), every counter-typed series must be monotone
    non-decreasing across scrapes — a decrease means the process restarted
    mid-check or a counter went backwards, both scrape-smoke failures.

/varz.json scrapes:
  * the document parses and carries the stable top-level keys (ready,
    engine, session, cumulative, windows);
  * every standard window (10s/1m/5m) reports seconds/counters/rates/
    latency, and each latency entry's quantiles are non-decreasing
    (p50 <= p95 <= p99);
  * session counters are non-negative integers; with two scrapes the
    monotone fields (submitted, completed, ...) must not decrease.

Exits non-zero listing every violation found. Standard library only.
"""

import argparse
import json
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LINE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                     r"(?:\{(?P<labels>[^}]*)\})?"
                     r" (?P<value>\S+)$")
VALID_TYPES = ("counter", "gauge", "histogram")
WINDOWS = ("10s", "1m", "5m")
SESSION_MONOTONE = ("submitted", "completed", "rejected_overloaded",
                    "rejected_unavailable", "memo_hits",
                    "result_cache_hits", "result_cache_misses",
                    "shard_exact_shortcuts")


class Violations:
    def __init__(self):
        self.items = []

    def add(self, where, message):
        self.items.append(f"{where}: {message}")


def family_of(name):
    """The metric family a sample series belongs to (histogram series
    share one family across their _bucket/_sum/_count suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_metrics(path, v):
    """Returns {(name, labels) -> float} plus {family -> type}."""
    samples = {}
    types = {}
    helps = set()
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as error:
        v.add(path, f"unreadable: {error}")
        return samples, types

    for number, line in enumerate(lines, start=1):
        where = f"{path}:{number}"
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not parts[3].strip():
                v.add(where, "HELP line without help text")
            else:
                helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                v.add(where, "malformed TYPE line")
                continue
            name, kind = parts[2], parts[3]
            if kind not in VALID_TYPES:
                v.add(where, f"unknown TYPE {kind!r} for {name}")
            if name in types:
                v.add(where, f"duplicate TYPE for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = LINE_RE.match(line)
        if not match:
            v.add(where, f"unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        if not NAME_RE.match(name):
            v.add(where, f"invalid metric name {name!r}")
        if not name.startswith("bwtk_"):
            v.add(where, f"metric {name} missing bwtk_ prefix")
        try:
            value = float(match.group("value"))
        except ValueError:
            v.add(where, f"unparseable value {match.group('value')!r}")
            continue
        family = family_of(name)
        if family not in types:
            v.add(where, f"sample {name} has no preceding # TYPE")
        if family not in helps:
            v.add(where, f"sample {name} has no preceding # HELP")
        if types.get(family) == "counter" and not family.endswith("_total"):
            v.add(where, f"counter family {family} does not end in _total")
        if types.get(family) == "counter" and value < 0:
            v.add(where, f"counter {name} is negative ({value})")
        samples[(name, match.group("labels") or "")] = value
    return samples, types


def check_histogram_buckets(path, samples, types, v):
    """le-labeled buckets within one series must be cumulative."""
    series = {}
    for (name, labels), value in samples.items():
        if not name.endswith("_bucket") or types.get(
                family_of(name)) != "histogram":
            continue
        le = None
        rest = []
        for part in labels.split(","):
            if part.startswith("le="):
                le = part[4:-1]  # strip le=" and trailing "
            elif part:
                rest.append(part)
        if le is None:
            v.add(path, f"{name}{{{labels}}} lacks an le label")
            continue
        bound = float("inf") if le == "+Inf" else float(le)
        series.setdefault((name, ",".join(rest)), []).append((bound, value))
    for (name, rest), buckets in series.items():
        buckets.sort()
        counts = [count for _, count in buckets]
        if counts != sorted(counts):
            v.add(path, f"histogram {name}{{{rest}}} buckets not cumulative")
        if buckets and buckets[-1][0] != float("inf"):
            v.add(path, f"histogram {name}{{{rest}}} missing +Inf bucket")


def check_metrics_monotone(paths, scrapes, v):
    """Counter series must not decrease across successive scrapes of one
    process (oldest scrape given first)."""
    for (older_path, older), (newer_path, newer) in zip(
            scrapes, scrapes[1:]):
        older_samples, older_types = older
        newer_samples, _ = newer
        for key, before in older_samples.items():
            name, labels = key
            if older_types.get(family_of(name)) != "counter":
                continue
            after = newer_samples.get(key)
            if after is None:
                v.add(newer_path,
                      f"counter {name}{{{labels}}} vanished "
                      f"(present in {older_path})")
            elif after < before:
                v.add(newer_path,
                      f"counter {name}{{{labels}}} decreased "
                      f"{before} -> {after}")


def load_varz(path, v):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        v.add(path, f"unreadable or invalid JSON: {error}")
        return None


def check_varz(path, doc, v):
    for key in ("ready", "engine", "session", "cumulative", "windows"):
        if key not in doc:
            v.add(path, f"missing top-level key {key!r}")
    session = doc.get("session", {})
    for key, value in session.items():
        if key == "accepting":
            if not isinstance(value, bool):
                v.add(path, f"session.{key} is not a bool")
        elif not isinstance(value, int) or value < 0:
            v.add(path, f"session.{key} is not a non-negative integer")
    windows = doc.get("windows", {})
    for window in WINDOWS:
        entry = windows.get(window)
        if entry is None:
            v.add(path, f"windows.{window} missing")
            continue
        for key in ("seconds", "counters", "rates", "latency"):
            if key not in entry:
                v.add(path, f"windows.{window}.{key} missing")
        for hist, latency in entry.get("latency", {}).items():
            quantiles = [latency.get(q, 0) for q in ("p50", "p95", "p99")]
            if quantiles != sorted(quantiles):
                v.add(path,
                      f"windows.{window}.latency.{hist} quantiles not "
                      f"monotone: {quantiles}")
            if latency.get("count", 0) == 0 and any(quantiles):
                v.add(path,
                      f"windows.{window}.latency.{hist} empty but has "
                      f"nonzero quantiles")


def check_varz_monotone(paths, docs, v):
    for (older_path, older), (newer_path, newer) in zip(
            list(zip(paths, docs)), list(zip(paths, docs))[1:]):
        before = older.get("session", {})
        after = newer.get("session", {})
        for key in SESSION_MONOTONE:
            if key in before and key in after and after[key] < before[key]:
                v.add(newer_path,
                      f"session.{key} decreased {before[key]} -> "
                      f"{after[key]} (vs {older_path})")


def main(argv):
    parser = argparse.ArgumentParser(
        description="validate telemetry scrapes")
    parser.add_argument("--metrics", action="append", default=[],
                        help="/metrics scrape file (repeatable; oldest "
                             "first for monotonicity checks)")
    parser.add_argument("--varz", action="append", default=[],
                        help="/varz.json scrape file (repeatable)")
    args = parser.parse_args(argv)
    if not args.metrics and not args.varz:
        parser.error("give at least one --metrics or --varz file")

    v = Violations()
    scrapes = []
    for path in args.metrics:
        parsed = parse_metrics(path, v)
        check_histogram_buckets(path, parsed[0], parsed[1], v)
        scrapes.append((path, parsed))
    if len(scrapes) >= 2:
        check_metrics_monotone(args.metrics, scrapes, v)

    docs = []
    for path in args.varz:
        doc = load_varz(path, v)
        if doc is not None:
            check_varz(path, doc, v)
            docs.append(doc)
    if len(docs) >= 2:
        check_varz_monotone(args.varz, docs, v)

    if v.items:
        print(f"FAIL: {len(v.items)} violation(s)")
        for item in v.items:
            print(f"  {item}")
        return 1
    checked = len(args.metrics) + len(args.varz)
    print(f"OK: {checked} scrape(s) validated")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
