#!/usr/bin/env python3
"""Validate a bench BENCH_*.json file against the documented schema.

Usage: tools/validate_bench_json.py BENCH_name.json [more.json ...]

Dispatches on the file's 'created_by' field:

bench_report (the default): checks the schema described in
docs/OBSERVABILITY.md (schema_version 1) — required keys and types at
every level, plus the grid-coverage floor from the experiment pipeline
(at least 2 distinct genomes, at least 3 distinct k values, and both a
serial engine (algorithm_a) and the batch engine) and that every run
reports the four paper phases (rank, ri_build, merge, tree_traversal).
The per-run 'latency_estimate' object (p50/p95/p99 nanoseconds derived
from the log2 query-latency histogram) is optional — older reports
predate it — but when present its quantiles must be non-negative
integers in non-decreasing order (p50 <= p95 <= p99).
The index-configuration fields 'rank_kernel' / 'prefix_table_q' on genome
entries are optional (older reports predate them) but type-checked when
present, and a run whose counters claim prefix_table_hits > 0 while its
genome reports no prefix table is rejected — the counters must agree with
the configuration that allegedly produced them.
Reports produced with --shards N carry optional sharding fields: genome
entries gain 'sharded_index_build_seconds' / 'num_shards' /
'shard_overlap' / 'sharded_index_bytes', and every run with engine
'sharded' must declare 'num_shards' >= 1 (other runs must not carry it).
All are type-checked when present.

bench_rank_kernel: checks the kernel-comparison schema — a 'measurements'
array of {checkpoint_rate, kernel, rank_ns, rankall_ns, iters} covering
at least 3 distinct checkpoint rates and at least the two always-available
kernels (scalar, word64). The grid floor does not apply.

bench_serve: checks the serving-layer schema (docs/SERVING.md) — a
'workload' object plus 'runs' whose engine is serve_inproc or serve_tcp
and whose 'threads' field is the closed-loop client count (the
bench_diff match key is shared with bench_report runs). In-process runs
must carry aggregated SearchStats and queue-wait quantiles; TCP runs may
omit stats (the wire does not carry them). Closed-loop runs must report
rejected_overloaded == 0, and total_hits for one (genome, k) cell must
agree across every transport and client count — the served answer may
not depend on how it was asked for.

bench_dictionary: checks the dictionary-engine schema (docs/DICTIONARY.md)
— a 'workload' object plus 'runs' whose engine is dictionary or
algorithm_a, paired per cell: total_hits for one (genome, k) cell (the
genome name carries the set size, e.g. "synth-1M/n4096") must agree
across both engines — the amortized descent is only reportable when it
returns the independent searches' answer. Both engines carry aggregated
SearchStats; the grid must cover at least 2 distinct pattern counts.

bench_bidir: checks the head-to-head engine-grid schema
(docs/BIDIRECTIONAL.md) — a 'workload' object plus 'runs' whose engine is
bidirectional, algorithm_a, or stree, all single-threaded by design:
total_hits for one (genome, k) cell (the genome name carries the read
length, e.g. "synth-1M/m100") must agree across all three engines — the
scheme search is only reportable when it returns the enumeration
engines' answer — and every cell must carry all three. The grid must
cover at least 2 distinct read lengths and at least 3 distinct k values.

bench_reuse: checks the reuse-tier schema — a 'workload' object, a
'cross_validation' object whose 'byte_identical' must be true (the bench
aborts before writing a report otherwise, so a false value means the file
was hand-edited), and 'runs' whose engine is one of the six reuse configs
(batch_off, batch_memo, batch_cache, batch_memo_cache, sharded_off,
sharded_cache). Timed reuse runs are single-threaded by design (memoized
SearchStats are publish-timing-dependent across workers), so every run
must declare threads == 1; total_hits for one (genome, k) cell must agree
across all six configs, and all six must appear. The 'aggregate' object
must carry the three headline ratios.

Exits non-zero listing every violation found.

Standard library only; no third-party schema packages.
"""

import json
import sys

UINT = (int,)
NUM = (int, float)

PAPER_PHASES = ("rank", "ri_build", "merge", "tree_traversal")

STATS_FIELDS = (
    "stree_nodes",
    "extend_calls",
    "completed_paths",
    "tau_pruned",
    "budget_pruned",
    "mtree_nodes",
    "mtree_leaves",
    "reused_nodes",
    "derived_runs",
)

GENOME_FIELDS = {
    "name": str,
    "length": UINT,
    "seed": UINT,
    "index_build_seconds": NUM,
    "index_build_phase_nanos": UINT,
    "index_bytes": UINT,
    "rank_ns": NUM,
    "rankall_ns": NUM,
}

# Optional genome keys: absent from reports produced before the prefix
# table / rank kernel / sharding work, type-checked when present.
GENOME_OPTIONAL_FIELDS = {
    "rank_kernel": str,
    "prefix_table_q": UINT,
    "sharded_index_build_seconds": NUM,
    "num_shards": UINT,
    "shard_overlap": UINT,
    "sharded_index_bytes": UINT,
}

RANK_KERNELS = ("scalar", "word64", "avx2")

MEASUREMENT_FIELDS = {
    "checkpoint_rate": UINT,
    "kernel": str,
    "rank_ns": NUM,
    "rankall_ns": NUM,
    "iters": UINT,
}

SERVE_ENGINES = ("serve_inproc", "serve_tcp")

# A bench_serve run: 'threads' is the closed-loop client count (the
# bench_diff match key is shared with bench_report runs).
SERVE_RUN_FIELDS = {
    "genome": str,
    "genome_length": UINT,
    "read_length": UINT,
    "read_count": UINT,
    "k": UINT,
    "engine": str,
    "threads": UINT,
    "session_threads": UINT,
    "wall_seconds": NUM,
    "reads_per_second": NUM,
    "total_hits": UINT,
    "rejected_overloaded": UINT,
}

REUSE_ENGINES = (
    "batch_off",
    "batch_memo",
    "batch_cache",
    "batch_memo_cache",
    "sharded_off",
    "sharded_cache",
)

# A bench_reuse run: one (workload, k, reuse-configuration) cell. The
# 'engine' field carries the reuse configuration so the bench_diff match
# key (genome, k, engine, threads) stays unique per cell; 'threads' is 1
# by design (memoized multi-thread runs have timing-dependent stats).
REUSE_RUN_FIELDS = {
    "genome": str,
    "genome_length": UINT,
    "read_length": UINT,
    "read_count": UINT,
    "distinct_queries": UINT,
    "k": UINT,
    "engine": str,
    "threads": UINT,
    "reps": UINT,
    "wall_seconds": NUM,
    "reads_per_second": NUM,
    "total_hits": UINT,
    "cache_hits": UINT,
    "cache_misses": UINT,
    "cache_evictions": UINT,
    "memo_lookups": UINT,
    "memo_hits": UINT,
    "memo_publishes": UINT,
    "stats": dict,
}

BIDIR_ENGINES = ("bidirectional", "algorithm_a", "stree")

# A bench_bidir run: one engine of one (read length, k) cell of the
# head-to-head grid behind AutoPickEngine. 'threads' is 1 for all three
# engines (the comparison is single-threaded by design); the genome name
# encodes the read length so the bench_diff match key
# (genome, k, engine, threads) stays unique per cell.
BIDIR_RUN_FIELDS = {
    "genome": str,
    "genome_length": UINT,
    "read_length": UINT,
    "read_count": UINT,
    "k": UINT,
    "engine": str,
    "threads": UINT,
    "wall_seconds": NUM,
    "reads_per_second": NUM,
    "total_hits": UINT,
    "stats": dict,
}

DICTIONARY_ENGINES = ("dictionary", "algorithm_a")

# A bench_dictionary run: one cell of the amortized-vs-independent grid.
# 'threads' is 1 for both engines (the comparison is single-threaded by
# design); the genome name encodes the pattern count so the bench_diff
# match key (genome, k, engine, threads) stays unique per cell.
DICTIONARY_RUN_FIELDS = {
    "genome": str,
    "genome_length": UINT,
    "pattern_length": UINT,
    "pattern_count": UINT,
    "trie_nodes": UINT,
    "k": UINT,
    "engine": str,
    "threads": UINT,
    "wall_seconds": NUM,
    "patterns_per_second": NUM,
    "total_hits": UINT,
    "stats": dict,
}

RUN_FIELDS = {
    "genome": str,
    "genome_length": UINT,
    "read_length": UINT,
    "read_count": UINT,
    "k": UINT,
    "engine": str,
    "threads": UINT,
    "wall_seconds": NUM,
    "reads_per_second": NUM,
    "total_hits": UINT,
    "stats": dict,
    "phases": dict,
    "counters": dict,
    "histograms": dict,
}


class Validator:
    def __init__(self, path):
        self.path = path
        self.errors = []

    def error(self, where, message):
        self.errors.append(f"{self.path}: {where}: {message}")

    def require(self, obj, where, fields):
        """Checks required keys and their types; returns True if all present."""
        ok = True
        for key, types in fields.items():
            if key not in obj:
                self.error(where, f"missing required key '{key}'")
                ok = False
            elif not isinstance(obj[key], types):
                type_names = (
                    types.__name__
                    if isinstance(types, type)
                    else "/".join(t.__name__ for t in types)
                )
                self.error(
                    where,
                    f"'{key}' must be {type_names}, "
                    f"got {type(obj[key]).__name__}",
                )
                ok = False
        return ok

    def check_nonneg_int_map(self, obj, where):
        for key, value in obj.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                self.error(where, f"'{key}' must be a non-negative integer")

    def check_phases(self, phases, where):
        for name, entry in phases.items():
            pwhere = f"{where}.{name}"
            if not isinstance(entry, dict):
                self.error(pwhere, "phase entry must be an object")
                continue
            for field in ("nanos", "calls"):
                v = entry.get(field)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    self.error(pwhere, f"'{field}' must be a non-negative integer")
            extra = set(entry) - {"nanos", "calls", "estimated"}
            if extra:
                self.error(pwhere, f"unexpected keys {sorted(extra)}")
            if "estimated" in entry and not isinstance(entry["estimated"], bool):
                self.error(pwhere, "'estimated' must be a boolean")
        missing = [p for p in PAPER_PHASES if p not in phases]
        if missing:
            self.error(where, f"missing paper phases {missing}")

    def check_histograms(self, hists, where):
        for name, entry in hists.items():
            hwhere = f"{where}.{name}"
            if not isinstance(entry, dict):
                self.error(hwhere, "histogram entry must be an object")
                continue
            for field in ("count", "sum"):
                v = entry.get(field)
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    self.error(hwhere, f"'{field}' must be a non-negative integer")
            buckets = entry.get("buckets")
            if not isinstance(buckets, list):
                self.error(hwhere, "'buckets' must be an array")
                continue
            total = 0
            for i, pair in enumerate(buckets):
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not all(isinstance(x, int) and x >= 0 for x in pair)
                ):
                    self.error(hwhere, f"buckets[{i}] must be [index, count]")
                    continue
                if pair[0] > 64:
                    self.error(hwhere, f"buckets[{i}] index {pair[0]} > 64")
                total += pair[1]
            if isinstance(entry.get("count"), int) and total != entry["count"]:
                self.error(
                    hwhere,
                    f"bucket counts sum to {total}, 'count' says {entry['count']}",
                )

    def check_latency_estimate(self, entry, where):
        if not isinstance(entry, dict):
            self.error(where, "must be an object")
            return
        quantiles = []
        for field in ("p50_nanos", "p95_nanos", "p99_nanos", "samples"):
            v = entry.get(field)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                self.error(where, f"'{field}' must be a non-negative integer")
                return
            if field != "samples":
                quantiles.append(v)
        if "estimated" in entry and not isinstance(entry["estimated"], bool):
            self.error(where, "'estimated' must be a boolean")
        if quantiles != sorted(quantiles):
            self.error(
                where,
                f"quantiles must be non-decreasing (p50 <= p95 <= p99), "
                f"got {quantiles}",
            )

    def check_run(self, run, where):
        if not self.require(run, where, RUN_FIELDS):
            return
        if "latency_estimate" in run:
            self.check_latency_estimate(
                run["latency_estimate"], f"{where}.latency_estimate"
            )
        missing_stats = [f for f in STATS_FIELDS if f not in run["stats"]]
        if missing_stats:
            self.error(f"{where}.stats", f"missing fields {missing_stats}")
        self.check_nonneg_int_map(run["stats"], f"{where}.stats")
        self.check_nonneg_int_map(run["counters"], f"{where}.counters")
        self.check_phases(run["phases"], f"{where}.phases")
        self.check_histograms(run["histograms"], f"{where}.histograms")
        if run.get("wall_seconds", 0) < 0:
            self.error(where, "'wall_seconds' must be non-negative")
        # Sharded runs must say how many shards; no other run may claim to.
        num_shards = run.get("num_shards")
        if run.get("engine") == "sharded":
            if not isinstance(num_shards, int) or isinstance(num_shards, bool) or num_shards < 1:
                self.error(where, "engine 'sharded' requires 'num_shards' >= 1")
        elif num_shards is not None:
            self.error(where, "'num_shards' is only valid on engine 'sharded'")

    def validate(self, doc):
        if not isinstance(doc, dict):
            self.error("$", "top level must be an object")
            return
        if doc.get("created_by") == "bench_rank_kernel":
            self.validate_rank_kernel(doc)
            return
        if doc.get("created_by") == "bench_serve":
            self.validate_serve(doc)
            return
        if doc.get("created_by") == "bench_dictionary":
            self.validate_dictionary(doc)
            return
        if doc.get("created_by") == "bench_bidir":
            self.validate_bidir(doc)
            return
        if doc.get("created_by") == "bench_reuse":
            self.validate_reuse(doc)
            return
        self.validate_report(doc)

    def validate_reuse(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "workload": dict,
                "cross_validation": dict,
                "runs": list,
                "aggregate": dict,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {"hardware_concurrency": UINT, "metrics_compiled_in": bool},
            )

        workload = doc.get("workload", {})
        if isinstance(workload, dict):
            self.require(
                workload,
                "$.workload",
                {
                    "genome": str,
                    "genome_length": UINT,
                    "read_length": UINT,
                    "query_count": UINT,
                    "zipf_distinct": UINT,
                    "zipf_exponent": NUM,
                    "reps": UINT,
                    "timed_threads": UINT,
                    "num_shards": UINT,
                },
            )

        # The grid is the acceptance gate: the bench refuses to write a
        # report whose reuse-on hits diverge from reuse-off, so a committed
        # file claiming anything but byte_identical == true is corrupt.
        grid = doc.get("cross_validation", {})
        if isinstance(grid, dict):
            if self.require(
                grid,
                "$.cross_validation",
                {"cells": UINT, "byte_identical": bool, "max_k": UINT,
                 "engines": list},
            ):
                if grid["cells"] < 1:
                    self.error("$.cross_validation", "'cells' must be >= 1")
                if not grid["byte_identical"]:
                    self.error(
                        "$.cross_validation",
                        "'byte_identical' must be true (the bench refuses "
                        "to write divergent results)",
                    )

        # total_hits for a given (genome, k) must agree across every reuse
        # configuration: memo, cache, and sharded dispatch are all
        # byte-identity contracts, so a divergence means the answer changed.
        hits_by_cell = {}
        engines = set()
        for i, run in enumerate(doc.get("runs", [])):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                self.error(where, "must be an object")
                continue
            if not self.require(run, where, REUSE_RUN_FIELDS):
                continue
            if run["engine"] not in REUSE_ENGINES:
                self.error(
                    where,
                    f"engine '{run['engine']}' not one of {list(REUSE_ENGINES)}",
                )
                continue
            if run["threads"] != 1:
                self.error(
                    where,
                    "'threads' must be 1 (timed reuse runs are "
                    "single-threaded for stats determinism)",
                )
            if run["wall_seconds"] < 0:
                self.error(where, "'wall_seconds' must be non-negative")
            for field in STATS_FIELDS:
                value = run["stats"].get(field)
                if not isinstance(value, int) or isinstance(value, bool):
                    self.error(
                        f"{where}.stats",
                        f"'{field}' must be a non-negative integer",
                    )
            engines.add(run["engine"])
            cell = (run["genome"], run["k"])
            if cell in hits_by_cell and hits_by_cell[cell] != run["total_hits"]:
                self.error(
                    where,
                    f"total_hits {run['total_hits']} disagrees with another "
                    f"run of genome '{cell[0]}' k={cell[1]} "
                    f"({hits_by_cell[cell]}) — reuse must not change the "
                    "answer",
                )
            hits_by_cell.setdefault(cell, run["total_hits"])
        missing = [e for e in REUSE_ENGINES if e not in engines]
        if missing:
            self.error("$.runs", f"missing reuse configurations {missing}")

        aggregate = doc.get("aggregate", {})
        if isinstance(aggregate, dict):
            self.require(
                aggregate,
                "$.aggregate",
                {
                    "zipf_speedup_full": NUM,
                    "unique_ratio_full": NUM,
                    "zipf_speedup_sharded": NUM,
                },
            )

    def validate_dictionary(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "workload": dict,
                "runs": list,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {"hardware_concurrency": UINT, "metrics_compiled_in": bool},
            )

        workload = doc.get("workload", {})
        if isinstance(workload, dict):
            self.require(
                workload,
                "$.workload",
                {
                    "genome": str,
                    "genome_length": UINT,
                    "pattern_length": UINT,
                    "max_pattern_count": UINT,
                },
            )

        # total_hits for a given (genome, k) cell — the genome name carries
        # the set size — must agree between the amortized descent and the
        # independent searches: a divergence means the dictionary engine
        # changed the answer, which the bench itself is supposed to refuse.
        hits_by_cell = {}
        engines_by_cell = {}
        pattern_counts = set()
        engines = set()
        for i, run in enumerate(doc.get("runs", [])):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                self.error(where, "must be an object")
                continue
            if not self.require(run, where, DICTIONARY_RUN_FIELDS):
                continue
            if run["engine"] not in DICTIONARY_ENGINES:
                self.error(
                    where,
                    f"engine '{run['engine']}' not one of "
                    f"{list(DICTIONARY_ENGINES)}",
                )
                continue
            if run["threads"] != 1:
                self.error(
                    where,
                    "'threads' must be 1 (the comparison is single-threaded)",
                )
            if run["wall_seconds"] < 0:
                self.error(where, "'wall_seconds' must be non-negative")
            if run["pattern_count"] < 1:
                self.error(where, "'pattern_count' must be >= 1")
            for field in STATS_FIELDS:
                value = run["stats"].get(field)
                if not isinstance(value, int) or isinstance(value, bool):
                    self.error(
                        f"{where}.stats",
                        f"'{field}' must be a non-negative integer",
                    )
            engines.add(run["engine"])
            pattern_counts.add(run["pattern_count"])
            cell = (run["genome"], run["k"])
            if cell in hits_by_cell and hits_by_cell[cell] != run["total_hits"]:
                self.error(
                    where,
                    f"total_hits {run['total_hits']} disagrees with another "
                    f"run of genome '{cell[0]}' k={cell[1]} "
                    f"({hits_by_cell[cell]}) — the amortized descent must "
                    "return the independent searches' answer",
                )
            hits_by_cell.setdefault(cell, run["total_hits"])
            engines_by_cell.setdefault(cell, set()).add(run["engine"])
        for engine in DICTIONARY_ENGINES:
            if engine not in engines:
                self.error("$.runs", f"engine '{engine}' missing (always runs)")
        for cell, cell_engines in sorted(engines_by_cell.items()):
            if len(cell_engines) != len(DICTIONARY_ENGINES):
                self.error(
                    "$.runs",
                    f"cell genome '{cell[0]}' k={cell[1]} lacks one of "
                    f"{list(DICTIONARY_ENGINES)} — every cell is a pair",
                )
        if len(pattern_counts) < 2:
            self.error(
                "$.runs",
                f"need >= 2 distinct pattern counts, got {sorted(pattern_counts)}",
            )

    def validate_bidir(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "workload": dict,
                "runs": list,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {"hardware_concurrency": UINT, "metrics_compiled_in": bool},
            )

        workload = doc.get("workload", {})
        if isinstance(workload, dict):
            self.require(
                workload,
                "$.workload",
                {
                    "genome": str,
                    "genome_length": UINT,
                    "read_count": UINT,
                    "prefix_table_q": UINT,
                },
            )

        # total_hits for a given (genome, k) cell — the genome name carries
        # the read length — must agree across all three engines: a
        # divergence means the scheme search changed the answer, which the
        # bench itself is supposed to refuse before writing.
        hits_by_cell = {}
        engines_by_cell = {}
        read_lengths = set()
        k_values = set()
        engines = set()
        for i, run in enumerate(doc.get("runs", [])):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                self.error(where, "must be an object")
                continue
            if not self.require(run, where, BIDIR_RUN_FIELDS):
                continue
            if run["engine"] not in BIDIR_ENGINES:
                self.error(
                    where,
                    f"engine '{run['engine']}' not one of {list(BIDIR_ENGINES)}",
                )
                continue
            if run["threads"] != 1:
                self.error(
                    where,
                    "'threads' must be 1 (the comparison is single-threaded)",
                )
            if run["wall_seconds"] < 0:
                self.error(where, "'wall_seconds' must be non-negative")
            if run["read_length"] < 1:
                self.error(where, "'read_length' must be >= 1")
            for field in STATS_FIELDS:
                value = run["stats"].get(field)
                if not isinstance(value, int) or isinstance(value, bool):
                    self.error(
                        f"{where}.stats",
                        f"'{field}' must be a non-negative integer",
                    )
            engines.add(run["engine"])
            read_lengths.add(run["read_length"])
            k_values.add(run["k"])
            cell = (run["genome"], run["k"])
            if cell in hits_by_cell and hits_by_cell[cell] != run["total_hits"]:
                self.error(
                    where,
                    f"total_hits {run['total_hits']} disagrees with another "
                    f"run of genome '{cell[0]}' k={cell[1]} "
                    f"({hits_by_cell[cell]}) — the scheme search must "
                    "return the enumeration engines' answer",
                )
            hits_by_cell.setdefault(cell, run["total_hits"])
            engines_by_cell.setdefault(cell, set()).add(run["engine"])
        for engine in BIDIR_ENGINES:
            if engine not in engines:
                self.error("$.runs", f"engine '{engine}' missing (always runs)")
        for cell, cell_engines in sorted(engines_by_cell.items()):
            if len(cell_engines) != len(BIDIR_ENGINES):
                self.error(
                    "$.runs",
                    f"cell genome '{cell[0]}' k={cell[1]} lacks one of "
                    f"{list(BIDIR_ENGINES)} — every cell is a triple",
                )
        if len(read_lengths) < 2:
            self.error(
                "$.runs",
                f"need >= 2 distinct read lengths, got {sorted(read_lengths)}",
            )
        if len(k_values) < 3:
            self.error(
                "$.runs",
                f"need >= 3 distinct k values, got {sorted(k_values)}",
            )

    def validate_serve(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "workload": dict,
                "runs": list,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {"hardware_concurrency": UINT, "metrics_compiled_in": bool},
            )

        workload = doc.get("workload", {})
        if isinstance(workload, dict):
            self.require(
                workload,
                "$.workload",
                {
                    "genome": str,
                    "genome_length": UINT,
                    "read_length": UINT,
                    "read_count": UINT,
                    "session_threads": UINT,
                },
            )

        # total_hits for a given (genome, k) must agree across every
        # transport and client count: the workload is fixed, so a
        # divergence means the serving layer changed the answer.
        hits_by_cell = {}
        transports = set()
        for i, run in enumerate(doc.get("runs", [])):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                self.error(where, "must be an object")
                continue
            if not self.require(run, where, SERVE_RUN_FIELDS):
                continue
            if run["engine"] not in SERVE_ENGINES:
                self.error(
                    where,
                    f"engine '{run['engine']}' not one of {list(SERVE_ENGINES)}",
                )
                continue
            if run["threads"] < 1:
                self.error(where, "'threads' (client count) must be >= 1")
            if run["wall_seconds"] < 0:
                self.error(where, "'wall_seconds' must be non-negative")
            if run["rejected_overloaded"] != 0:
                self.error(
                    where,
                    "closed-loop runs must not shed load "
                    f"(rejected_overloaded = {run['rejected_overloaded']})",
                )
            # stats is required on in-process runs (the session returns
            # per-query SearchStats); the wire does not carry stats, so
            # serve_tcp runs legitimately omit it.
            if run["engine"] == "serve_inproc":
                stats = run.get("stats")
                if not isinstance(stats, dict):
                    self.error(where, "engine 'serve_inproc' requires 'stats'")
                else:
                    for field in STATS_FIELDS:
                        value = stats.get(field)
                        if not isinstance(value, int) or isinstance(value, bool):
                            self.error(
                                f"{where}.stats",
                                f"'{field}' must be a non-negative integer",
                            )
                for field in (
                    "queue_p50_nanos",
                    "queue_p95_nanos",
                    "queue_p99_nanos",
                ):
                    value = run.get(field)
                    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                        self.error(
                            where,
                            f"engine 'serve_inproc' requires non-negative "
                            f"integer '{field}'",
                        )
            transports.add(run["engine"])
            cell = (run["genome"], run["k"])
            if cell in hits_by_cell and hits_by_cell[cell] != run["total_hits"]:
                self.error(
                    where,
                    f"total_hits {run['total_hits']} disagrees with another "
                    f"run of genome '{cell[0]}' k={cell[1]} "
                    f"({hits_by_cell[cell]}) — served answers must not "
                    "depend on transport or client count",
                )
            hits_by_cell.setdefault(cell, run["total_hits"])
        if "serve_inproc" not in transports:
            self.error("$.runs", "engine 'serve_inproc' missing (always runs)")

    def validate_rank_kernel(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "genome_length": UINT,
                "measurements": list,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {
                    "hardware_concurrency": UINT,
                    "metrics_compiled_in": bool,
                    "avx2_available": bool,
                },
            )

        rates = set()
        kernels = set()
        for i, m in enumerate(doc.get("measurements", [])):
            where = f"$.measurements[{i}]"
            if not isinstance(m, dict):
                self.error(where, "must be an object")
                continue
            if not self.require(m, where, MEASUREMENT_FIELDS):
                continue
            if m["kernel"] not in RANK_KERNELS:
                self.error(
                    where,
                    f"kernel '{m['kernel']}' not one of {list(RANK_KERNELS)}",
                )
            if m["checkpoint_rate"] <= 0 or m["checkpoint_rate"] % 32 != 0:
                self.error(
                    where,
                    f"checkpoint_rate {m['checkpoint_rate']} must be a "
                    "positive multiple of 32",
                )
            for field in ("rank_ns", "rankall_ns"):
                if m[field] <= 0:
                    self.error(where, f"'{field}' must be positive")
            if m["iters"] <= 0:
                self.error(where, "'iters' must be positive")
            rates.add(m["checkpoint_rate"])
            kernels.add(m["kernel"])
        if len(rates) < 3:
            self.error(
                "$.measurements",
                f"need >= 3 distinct checkpoint rates, got {sorted(rates)}",
            )
        for required_kernel in ("scalar", "word64"):
            if required_kernel not in kernels:
                self.error(
                    "$.measurements",
                    f"kernel '{required_kernel}' missing (always available)",
                )

    def validate_report(self, doc):
        self.require(
            doc,
            "$",
            {
                "schema_version": UINT,
                "name": str,
                "created_by": str,
                "smoke": bool,
                "scale": NUM,
                "hardware": dict,
                "grid": dict,
                "genomes": list,
                "runs": list,
            },
        )
        if doc.get("schema_version") != 1:
            self.error("$", f"unsupported schema_version {doc.get('schema_version')}")

        hardware = doc.get("hardware", {})
        if isinstance(hardware, dict):
            self.require(
                hardware,
                "$.hardware",
                {"hardware_concurrency": UINT, "metrics_compiled_in": bool},
            )

        grid = doc.get("grid", {})
        if isinstance(grid, dict):
            self.require(
                grid,
                "$.grid",
                {
                    "genomes": list,
                    "k_values": list,
                    "engines": list,
                    "read_length": UINT,
                    "read_count": UINT,
                    "batch_threads": UINT,
                },
            )

        genome_prefix_q = {}  # genome name -> declared prefix_table_q
        for i, genome in enumerate(doc.get("genomes", [])):
            where = f"$.genomes[{i}]"
            if not isinstance(genome, dict):
                self.error(where, "must be an object")
                continue
            self.require(genome, where, GENOME_FIELDS)
            for key, types in GENOME_OPTIONAL_FIELDS.items():
                if key in genome and not isinstance(genome[key], types):
                    self.error(
                        where,
                        f"optional '{key}' must be "
                        f"{types.__name__ if isinstance(types, type) else '/'.join(t.__name__ for t in types)}, "
                        f"got {type(genome[key]).__name__}",
                    )
            kernel = genome.get("rank_kernel")
            if isinstance(kernel, str) and kernel not in RANK_KERNELS:
                self.error(
                    where,
                    f"rank_kernel '{kernel}' not one of {list(RANK_KERNELS)}",
                )
            if isinstance(genome.get("name"), str):
                q = genome.get("prefix_table_q")
                genome_prefix_q[genome["name"]] = q if isinstance(q, int) else 0

        runs = doc.get("runs", [])
        for i, run in enumerate(runs):
            where = f"$.runs[{i}]"
            if not isinstance(run, dict):
                self.error(where, "must be an object")
                continue
            self.check_run(run, where)
            # Counter/configuration cross-check: a run cannot claim prefix
            # table hits when its genome's index declared no table.
            counters = run.get("counters")
            if isinstance(counters, dict):
                hits = counters.get("prefix_table_hits")
                declared_q = genome_prefix_q.get(run.get("genome"), 0)
                if isinstance(hits, int) and hits > 0 and not declared_q:
                    self.error(
                        f"{where}.counters",
                        f"prefix_table_hits is {hits} but genome "
                        f"'{run.get('genome')}' declares no prefix table "
                        "(prefix_table_q is 0 or missing)",
                    )

        # Grid-coverage floor (the ISSUE's acceptance grid).
        run_dicts = [r for r in runs if isinstance(r, dict)]
        genomes = {r.get("genome") for r in run_dicts if "genome" in r}
        k_values = {r.get("k") for r in run_dicts if "k" in r}
        engines = {r.get("engine") for r in run_dicts if "engine" in r}
        if len(genomes) < 2:
            self.error("$.runs", f"need >= 2 distinct genomes, got {sorted(genomes)}")
        if len(k_values) < 3:
            self.error("$.runs", f"need >= 3 distinct k values, got {sorted(k_values)}")
        for required_engine in ("algorithm_a", "batch"):
            if required_engine not in engines:
                self.error("$.runs", f"engine '{required_engine}' missing from grid")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        validator = Validator(path)
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            failed = True
            continue
        validator.validate(doc)
        if validator.errors:
            failed = True
            print(f"FAIL {path}: {len(validator.errors)} error(s)", file=sys.stderr)
            for err in validator.errors:
                print(f"  {err}", file=sys.stderr)
        else:
            if doc.get("created_by") == "bench_rank_kernel":
                n = len(doc.get("measurements", []))
                print(f"OK {path}: schema_version 1, {n} measurements")
            else:
                n_runs = len(doc.get("runs", []))
                print(f"OK {path}: schema_version 1, {n_runs} runs")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
